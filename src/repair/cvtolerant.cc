#include "repair/cvtolerant.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>

#include <optional>

#include "dc/eval_index.h"
#include "graph/bounds.h"
#include "relation/encoded.h"
#include "solver/materialized_cache.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

// Cached per-constraint facts: its violations over I and the bounds of
// its private conflict hypergraph. Bounds for a whole variant Σ' combine
// conservatively: δ_l(Σ') >= max_i δ_l(φ_i') (more edges only enlarge the
// cover) and δ_u(Σ') <= Σ_i δ_u(φ_i') (the union of the per-constraint
// covers is a cover of the union graph).
struct ConstraintFacts {
  std::vector<Violation> violations;
  double delta_l = 0.0;
  double delta_u = 0.0;
  bool hopeless = false;  ///< violation cap hit: never the minimum repair
};

// Candidate variant with its combined bound estimates.
struct Candidate {
  const SigmaVariant* variant = nullptr;
  double delta_l = 0.0;
  double delta_u = 0.0;
  int num_violations = 0;
};

}  // namespace

RepairResult CVTolerantRepair(const Relation& I, const ConstraintSet& sigma,
                              const CVTolerantOptions& options) {
  auto start = std::chrono::steady_clock::now();
  TraceSpan repair_span("cvtolerant/repair");
  RepairResult result;
  result.satisfied_constraints = sigma;
  result.repaired = I;

  VariantGenOptions gen = options.variants;
  const bool theta_nonnegative = gen.theta >= 0.0;
  gen.always_include_original =
      gen.always_include_original && theta_nonnegative;
  if (gen.data == nullptr) gen.data = &I;

  VariantGenStats gen_stats;
  std::vector<SigmaVariant> variants;
  {
    TraceSpan span("cvtolerant/generate_variants");
    variants = GenerateSigmaVariants(sigma, I.schema(), gen, &gen_stats);
    span.AddArg("variants", static_cast<int64_t>(variants.size()));
  }
  result.stats.variants_enumerated = static_cast<int>(variants.size());
  result.stats.variants_pruned_nonmaximal = gen_stats.pruned_nonmaximal;

  // The data-repair engine inherits the repair-level thread budget unless
  // it was given its own.
  VfreeOptions vfree_options = options.vfree;
  if (vfree_options.threads == 0) vfree_options.threads = options.threads;
  vfree_options.use_encoded = options.use_encoded;
  const CostModel& cost = vfree_options.cost;
  DomainStats stats_of_I(I);

  // One coded mirror of I, shared by every detection consumer below. I is
  // never mutated during the run (repairs are built on copies), so the
  // mirror stays in sync for the whole repair.
  std::optional<EncodedRelation> encoded;
  if (options.use_encoded) encoded.emplace(I);
  const EncodedRelation* E = encoded ? &*encoded : nullptr;

  // One shared evaluation index per base constraint: every variant of
  // sigma[i] (the i-th position of each SigmaVariant) detects violations
  // through indexes[i], deriving its hash partition from the base's and
  // answering base-shared predicates from the memo. Variants are
  // positionally aligned with Σ, so the owning base is the position.
  // Snapshot the process-wide eval counters first so stats report this
  // run's delta.
  EvalCounters counters_before = eval_counters::Snapshot();
  std::vector<std::unique_ptr<EvalIndex>> indexes;
  std::map<DenialConstraint, const EvalIndex*> index_of;
  if (options.reuse_index) {
    TraceSpan span("cvtolerant/build_indexes");
    span.AddArg("bases", static_cast<int64_t>(sigma.size()));
    indexes.reserve(sigma.size());
    for (const DenialConstraint& phi : sigma) {
      indexes.push_back(std::make_unique<EvalIndex>(
          I, phi, EvalIndex::kDefaultMemoBudget, E));
    }
    // Registration and Prepare run serially (position order, so a
    // constraint shared by several bases deterministically uses the first);
    // afterwards the indexes are read-only and safe to share across the
    // pool threads of the facts phase below.
    auto register_constraint = [&](const DenialConstraint& c, size_t pos) {
      if (pos >= indexes.size()) return;
      auto [it, inserted] = index_of.try_emplace(c, indexes[pos].get());
      if (inserted) indexes[pos]->Prepare(c);
    };
    for (size_t i = 0; i < sigma.size(); ++i) register_constraint(sigma[i], i);
    for (const SigmaVariant& sv : variants) {
      for (size_t i = 0; i < sv.constraints.size(); ++i) {
        register_constraint(sv.constraints[i], i);
      }
    }
  }
  auto index_for = [&](const DenialConstraint& c) -> const EvalIndex* {
    auto it = index_of.find(c);
    return it == index_of.end() ? nullptr : it->second;
  };

  // Σ-variants share most constraints, so violations and bounds are
  // cached per distinct constraint; the facts cache doubles as the δ-bound
  // memo, keyed by the variant's canonical predicate list.
  std::map<DenialConstraint, ConstraintFacts> facts_cache;
  int64_t bound_memo_hits = 0;
  int64_t violation_cap =
      options.max_violations_per_tuple > 0
          ? static_cast<int64_t>(options.max_violations_per_tuple *
                                 std::max(I.num_rows(), 1))
          : std::numeric_limits<int64_t>::max();
  auto compute_facts = [&](const DenialConstraint& c, ConstraintFacts* facts) {
    const EvalIndex* idx = index_for(c);
    facts->violations =
        idx ? idx->FindViolationsCapped(c, 0, violation_cap, &facts->hopeless)
        : E ? FindViolationsOfCapped(*E, c, 0, violation_cap, &facts->hopeless)
            : FindViolationsOfCapped(I, c, 0, violation_cap, &facts->hopeless);
    if (facts->hopeless) {
      facts->violations.clear();
      facts->delta_l = std::numeric_limits<double>::infinity();
      facts->delta_u = std::numeric_limits<double>::infinity();
      return;
    }
    if (!facts->violations.empty()) {
      ConflictHypergraph g =
          ConflictHypergraph::Build(I, {c}, facts->violations, cost);
      RepairCostBounds bounds =
          ComputeBounds(g, c.Degree(), cost, vfree_options.cover, &stats_of_I);
      facts->delta_l = bounds.lower;
      facts->delta_u = bounds.upper;
    }
  };
  // Facts are pure per-constraint functions of I, so all distinct
  // constraints across Σ and every variant are evaluated up front — in
  // parallel under a thread budget, serially (inline, same order) at one
  // thread. Each worker fills its own map slot; std::map references are
  // stable, and the map itself is not mutated during the parallel phase.
  {
    TraceSpan span("cvtolerant/detect_facts");
    std::vector<std::map<DenialConstraint, ConstraintFacts>::iterator> todo;
    auto enqueue = [&](const DenialConstraint& c) {
      auto [it, inserted] = facts_cache.try_emplace(c);
      if (inserted) todo.push_back(it);
    };
    for (const DenialConstraint& phi : sigma) enqueue(phi);
    for (const SigmaVariant& sv : variants) {
      for (const DenialConstraint& phi : sv.constraints) enqueue(phi);
    }
    span.AddArg("distinct_constraints", static_cast<int64_t>(todo.size()));
    ThreadPool::ParallelFor(
        static_cast<int64_t>(todo.size()),
        [&](int64_t i) {
          compute_facts(todo[static_cast<size_t>(i)]->first,
                        &todo[static_cast<size_t>(i)]->second);
        },
        options.threads);
  }
  auto facts_of = [&](const DenialConstraint& c) -> const ConstraintFacts& {
    auto it = facts_cache.find(c);
    if (it != facts_cache.end()) {
      ++bound_memo_hits;
      return it->second;
    }
    ConstraintFacts facts;
    compute_facts(c, &facts);
    return facts_cache.emplace(c, std::move(facts)).first->second;
  };

  // Bound estimates for every candidate, processed in ascending-δ_l order
  // so that early repairs tighten δ_min as fast as possible (Example 8).
  std::vector<Candidate> candidates;
  candidates.reserve(variants.size());
  for (const SigmaVariant& sv : variants) {
    Candidate c;
    c.variant = &sv;
    bool hopeless = false;
    for (const DenialConstraint& phi : sv.constraints) {
      const ConstraintFacts& facts = facts_of(phi);
      hopeless |= facts.hopeless;
      c.delta_l = std::max(c.delta_l, facts.delta_l);
      c.delta_u += facts.delta_u;
      c.num_violations += static_cast<int>(facts.violations.size());
    }
    if (hopeless) {
      ++result.stats.variants_pruned_bounds;
      continue;
    }
    candidates.push_back(c);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.delta_l < b.delta_l;
                   });

  // Algorithm 1 line 1: seed with δ_u(Σ, I) when Σ is a valid candidate.
  double delta_min = std::numeric_limits<double>::infinity();
  {
    int sigma_violations = 0;
    double sigma_upper = 0.0;
    for (const DenialConstraint& phi : sigma) {
      const ConstraintFacts& facts = facts_of(phi);
      sigma_violations += static_cast<int>(facts.violations.size());
      sigma_upper += facts.delta_u;
    }
    result.stats.initial_violations = sigma_violations;
    if (theta_nonnegative) delta_min = sigma_upper;
  }

  MaterializedCache cache;
  int64_t fresh_counter = 1;
  bool have_result = false;
  double best_cost = std::numeric_limits<double>::infinity();

  for (const Candidate& c : candidates) {
    if (options.enable_bound_pruning && c.delta_l > delta_min + 1e-9) {
      ++result.stats.variants_pruned_bounds;
      continue;
    }
    if (result.stats.datarepair_calls >= options.max_datarepair_calls) break;
    ++result.stats.datarepair_calls;
    TraceSpan span("cvtolerant/solve_candidate");
    span.AddArg("call", result.stats.datarepair_calls);
    span.AddArg("violations", c.num_violations);

    // Assemble the union violations and the cover (only for survivors).
    std::vector<Violation> violations;
    violations.reserve(c.num_violations);
    const ConstraintSet& set = c.variant->constraints;
    for (size_t i = 0; i < set.size(); ++i) {
      for (Violation v : facts_of(set[i]).violations) {
        v.constraint_index = static_cast<int>(i);
        violations.push_back(std::move(v));
      }
    }
    std::optional<Relation> repaired;
    double delete_cost = 0.0;  // strategy cost of a kDelete candidate
    if (vfree_options.strategy == RepairStrategy::kDelete) {
      // Subset repair ignores the cell cover entirely: the candidate is
      // resolved by a tuple-deletion cover of its union violations.
      // Stats are not accumulated here (like fresh_assignments, the
      // chosen repair's deletions are recounted below).
      CanonicalizeViolations(&violations);
      SubsetRepair sub = SubsetCoverRepair(I, stats_of_I, violations,
                                           vfree_options.subset, nullptr);
      double bound = options.enable_bound_pruning
                         ? delta_min + 1e-9
                         : std::numeric_limits<double>::infinity();
      if (sub.cost <= bound) {
        Relation r = I;
        for (auto& [cell, value] : sub.assignments) {
          r.SetValue(cell, std::move(value));
        }
        repaired = std::move(r);
        delete_cost = sub.cost;
      }
    } else if (options.use_vfree) {
      ConflictHypergraph g =
          ConflictHypergraph::Build(I, set, violations, cost);
      VertexCover cover =
          ApproximateVertexCover(g, vfree_options.cover, &stats_of_I);
      std::vector<Cell> changing = cover.Cells(g);
      repaired = DataRepairVfree(
          I, stats_of_I, set, changing,
          options.enable_bound_pruning
              ? delta_min + 1e-9
              : std::numeric_limits<double>::infinity(),
          vfree_options, options.enable_sharing ? &cache : nullptr,
          &result.stats, &fresh_counter, E);
    } else {
      HolisticOptions hopts = options.holistic;
      hopts.cost = cost;
      hopts.use_encoded = options.use_encoded;
      RepairResult hr = HolisticRepair(I, set, hopts);
      result.stats.solver_calls += hr.stats.solver_calls;
      result.stats.rounds += hr.stats.rounds;
      result.stats.fresh_assignments += hr.stats.fresh_assignments;
      repaired = std::move(hr.repaired);
    }
    if (!repaired) continue;

    // The candidate's comparable cost under the active strategy: deleted
    // tuples price at their deletion weight, not at per-cell distance.
    double delta;
    switch (vfree_options.strategy) {
      case RepairStrategy::kDelete:
        delta = delete_cost;
        break;
      case RepairStrategy::kHybrid:
        delta = StrategyRepairCost(I, *repaired, cost, vfree_options.strategy,
                                   vfree_options.subset, stats_of_I);
        break;
      case RepairStrategy::kUpdate:
      default:
        delta = RepairCost(I, *repaired, cost);
        break;
    }
    if (delta < best_cost) {
      best_cost = delta;
      delta_min = std::min(delta_min, delta);
      result.repaired = std::move(*repaired);
      result.satisfied_constraints = set;
      have_result = true;
    }
  }

  if (options.use_vfree) result.stats.rounds = 1;
  if (!have_result) {
    if (theta_nonnegative) {
      // Every candidate (including Σ) was hopeless under the violation
      // cap: fall back to a plain uncapped repair of Σ so that θ >= 0
      // always behaves at least like Vfree.
      RepairResult fallback = VfreeRepair(I, sigma, vfree_options);
      result.repaired = std::move(fallback.repaired);
      result.satisfied_constraints = sigma;
      result.stats.solver_calls += fallback.stats.solver_calls;
    } else {
      // Extreme negative θ with no viable variant: input unchanged.
      result.repaired = I;
      result.satisfied_constraints = sigma;
    }
  }
  result.stats.cache_hits = static_cast<int>(cache.hits());
  EvalCounters counters_delta = eval_counters::Snapshot() - counters_before;
  result.stats.index_partition_builds = counters_delta.partition_builds;
  result.stats.index_partition_reuses = counters_delta.partition_hits +
                                        counters_delta.partition_refines +
                                        counters_delta.partition_merges;
  result.stats.index_predicate_evals = counters_delta.predicate_evals;
  result.stats.index_code_evals = counters_delta.code_predicate_evals;
  result.stats.index_memo_hits = counters_delta.memo_hits;
  result.stats.index_truncated_scans = counters_delta.truncated_scans;
  result.stats.index_blocks_scanned = counters_delta.blocks_scanned;
  result.stats.index_blocks_skipped = counters_delta.blocks_skipped;
  result.stats.bound_memo_hits = bound_memo_hits;
  // fresh_assignments accumulated across *all* candidate repairs; report
  // the count in the chosen repair instead.
  result.stats.fresh_assignments = 0;
  for (int i = 0; i < result.repaired.num_rows(); ++i) {
    for (AttrId a = 0; a < result.repaired.num_attributes(); ++a) {
      if (result.repaired.Get(i, a).is_fresh()) {
        ++result.stats.fresh_assignments;
      }
    }
  }
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost =
      StrategyRepairCost(I, result.repaired, cost, vfree_options.strategy,
                         vfree_options.subset, stats_of_I);
  if (vfree_options.strategy != RepairStrategy::kUpdate) {
    // Like fresh_assignments above: deletions accumulated across candidate
    // repairs — recount in the chosen one.
    result.stats.rows_deleted = 0;
    for (int i = 0; i < result.repaired.num_rows(); ++i) {
      if (RowDeleted(I, result.repaired, i)) ++result.stats.rows_deleted;
    }
  }
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

std::optional<ScopedRepair> CVTolerantResolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& frozen_variant, std::vector<Violation> violations,
    const CVTolerantOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded, double delta_min) {
  TraceSpan span("cvtolerant/resolve_components");
  span.AddArg("violations", static_cast<int64_t>(violations.size()));
  // Same engine-option derivation as the candidate loop of
  // CVTolerantRepair: the data-repair engine inherits the repair-level
  // thread budget, and the encoded backend follows the repair-level flag.
  VfreeOptions vfree_options = options.vfree;
  if (vfree_options.threads == 0) vfree_options.threads = options.threads;
  vfree_options.use_encoded = options.use_encoded;
  return SolveDirtyComponents(I, stats_of_I, frozen_variant,
                              std::move(violations), delta_min, vfree_options,
                              cache, stats, fresh_counter,
                              options.use_encoded ? encoded : nullptr);
}

std::map<DenialConstraint, VariantFacts> ScanVariantFacts(
    const Relation& I, const ConstraintSet& sigma,
    const std::vector<SigmaVariant>& variants,
    const CVTolerantOptions& options, const EncodedRelation* encoded) {
  const EncodedRelation* E = options.use_encoded ? encoded : nullptr;
  const CostModel& cost = options.vfree.cost;
  int64_t violation_cap =
      options.max_violations_per_tuple > 0
          ? static_cast<int64_t>(options.max_violations_per_tuple *
                                 std::max(I.num_rows(), 1))
          : std::numeric_limits<int64_t>::max();
  std::map<DenialConstraint, VariantFacts> facts;
  auto compute = [&](const DenialConstraint& c) {
    auto [it, inserted] = facts.try_emplace(c);
    if (!inserted) return;
    VariantFacts& f = it->second;
    f.violations =
        E ? FindViolationsOfCapped(*E, c, 0, violation_cap, &f.hopeless)
          : FindViolationsOfCapped(I, c, 0, violation_cap, &f.hopeless);
    if (f.hopeless) {
      f.violations.clear();
      f.delta_l = std::numeric_limits<double>::infinity();
      f.delta_u = std::numeric_limits<double>::infinity();
      return;
    }
    // Canonical rows order: scan order depends on the detection backend's
    // partition layout, and the search below must see identical facts no
    // matter which provider produced them.
    std::sort(f.violations.begin(), f.violations.end(),
              [](const Violation& a, const Violation& b) {
                return a.rows < b.rows;
              });
    if (!f.violations.empty()) {
      ConflictHypergraph g =
          ConflictHypergraph::Build(I, {c}, f.violations, cost);
      RepairCostBounds bounds =
          ComputeBounds(g, c.Degree(), cost, options.vfree.cover);
      f.delta_l = bounds.lower;
      f.delta_u = bounds.upper;
    }
  };
  for (const DenialConstraint& phi : sigma) compute(phi);
  for (const SigmaVariant& sv : variants) {
    for (const DenialConstraint& phi : sv.constraints) compute(phi);
  }
  return facts;
}

VariantSearchResult CVTolerantSearchWithFacts(
    const Relation& I, const ConstraintSet& sigma,
    const std::vector<SigmaVariant>& variants, const VariantFactsFn& facts_of,
    const CVTolerantOptions& options, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  TraceSpan span("cvtolerant/search_with_facts");
  span.AddArg("variants", static_cast<int64_t>(variants.size()));
  VariantSearchResult result;
  result.solved_costs.assign(variants.size(),
                             std::numeric_limits<double>::quiet_NaN());
  result.abort_bounds.assign(variants.size(),
                             std::numeric_limits<double>::quiet_NaN());

  VfreeOptions vfree_options = options.vfree;
  if (vfree_options.threads == 0) vfree_options.threads = options.threads;
  vfree_options.use_encoded = options.use_encoded;
  const CostModel& cost = vfree_options.cost;
  const EncodedRelation* E = options.use_encoded ? encoded : nullptr;
  DomainStats stats_of_I(I);

  struct Candidate {
    const SigmaVariant* variant = nullptr;
    size_t index = 0;  // position in the input vector
    double delta_l = 0.0;
    double delta_u = 0.0;
    int num_violations = 0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(variants.size());
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    Candidate c;
    c.variant = &variants[vi];
    c.index = vi;
    bool hopeless = false;
    for (const DenialConstraint& phi : variants[vi].constraints) {
      const VariantFacts& facts = facts_of(phi);
      hopeless |= facts.hopeless;
      c.delta_l = std::max(c.delta_l, facts.delta_l);
      c.delta_u += facts.delta_u;
      c.num_violations += static_cast<int>(facts.violations.size());
    }
    if (hopeless) {
      ++result.variants_pruned;
      continue;
    }
    candidates.push_back(c);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.delta_l < b.delta_l;
                   });

  // Algorithm 1 line 1: seed with δ_u(Σ, I) when Σ is a valid candidate.
  double delta_min = std::numeric_limits<double>::infinity();
  if (options.variants.theta >= 0.0) {
    double sigma_upper = 0.0;
    for (const DenialConstraint& phi : sigma) {
      sigma_upper += facts_of(phi).delta_u;
    }
    delta_min = sigma_upper;
  }

  MaterializedCache cache;
  for (const Candidate& c : candidates) {
    if (options.enable_bound_pruning && c.delta_l > delta_min + 1e-9) {
      ++result.variants_pruned;
      continue;
    }
    if (result.datarepair_calls >= options.max_datarepair_calls) break;
    ++result.datarepair_calls;
    TraceSpan solve_span("cvtolerant/solve_candidate");
    solve_span.AddArg("call", result.datarepair_calls);
    solve_span.AddArg("violations", c.num_violations);

    std::vector<Violation> violations;
    violations.reserve(static_cast<size_t>(c.num_violations));
    const ConstraintSet& set = c.variant->constraints;
    for (size_t i = 0; i < set.size(); ++i) {
      for (Violation v : facts_of(set[i]).violations) {
        v.constraint_index = static_cast<int>(i);
        violations.push_back(std::move(v));
      }
    }
    const double abort_at = options.enable_bound_pruning
                                ? delta_min + 1e-9
                                : std::numeric_limits<double>::infinity();
    std::optional<ScopedRepair> scoped = SolveDirtyComponents(
        I, stats_of_I, set, std::move(violations), abort_at, vfree_options,
        options.enable_sharing ? &cache : nullptr,
        /*stats=*/nullptr, fresh_counter, E);
    if (!scoped) {
      // δ_min abort: the candidate's cost strictly exceeds the threshold it
      // was solving under — worth recording as a lower bound.
      result.abort_bounds[c.index] = abort_at;
      continue;
    }

    Relation repaired = I;
    for (auto& [cell, value] : scoped->assignments) {
      repaired.SetValue(cell, std::move(value));
    }
    // Under the delete/hybrid strategies the scoped cost already prices
    // deletions at their weights; per-cell RepairCost would misprice the
    // tombstones.
    double delta = vfree_options.strategy == RepairStrategy::kUpdate
                       ? RepairCost(I, repaired, cost)
                       : scoped->cost;
    result.solved_costs[c.index] = delta;
    if (delta < result.cost) {
      result.cost = delta;
      delta_min = std::min(delta_min, delta);
      result.repaired = std::move(repaired);
      result.variant = set;
      result.have_result = true;
    }
  }
  return result;
}

}  // namespace cvrepair
