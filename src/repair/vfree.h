#ifndef CVREPAIR_REPAIR_VFREE_H_
#define CVREPAIR_REPAIR_VFREE_H_

#include <optional>
#include <utility>

#include "dc/violation.h"
#include "graph/vertex_cover.h"
#include "relation/domain_stats.h"
#include "repair/costs.h"
#include "repair/repair_result.h"
#include "repair/subset.h"
#include "solver/csp_solver.h"
#include "solver/materialized_cache.h"

namespace cvrepair {

/// Options shared by the Vfree repair entry points.
struct VfreeOptions {
  CostModel cost;
  CoverHeuristic cover = CoverHeuristic::kGreedyDegree;
  SolverOptions solver;
  /// Thread budget for component solving: 0 = the global ThreadPool
  /// setting, 1 = the exact legacy serial path. Results are bit-identical
  /// across thread counts (components share no cells; fresh-variable ids
  /// are replayed in serial order).
  int threads = 0;
  /// Run violation/suspect detection on the dictionary-encoded columnar
  /// backend (relation/encoded.h) instead of boxed Values. Results are
  /// bit-identical either way; off = the legacy row-major scans.
  bool use_encoded = true;
  /// Topology-aware decomposition of giant components (DESIGN.md §12):
  /// components with more than `max_component` cells are split at
  /// low-density articulation vertices (graph/decompose.h), the parts
  /// solved independently — restoring thread-pool parallelism and
  /// MaterializedCache hits — and the boundary-straddling atoms
  /// re-verified by a stitching check that merges and re-solves only the
  /// still-conflicting region. The repaired instance stays violation-free
  /// either way. Off by default.
  bool decompose = false;
  /// Size threshold (in cells) above which a component is split. Only
  /// meaningful with `decompose`.
  int max_component = 24;
  /// How violations are resolved (repair/subset.h): cell updates (the
  /// paper's model, default), tuple deletion (subset repair), or the
  /// hybrid rule — solve with updates, then tombstone any tuple whose
  /// summed update cost exceeds its deletion weight. Deleted tuples are
  /// tombstoned in place (all cells NULL), which keeps row counts and
  /// lets the deletion flow through the encoded backend, ViolationIndex
  /// delta maintenance, and the sharded serve path unchanged.
  RepairStrategy strategy = RepairStrategy::kUpdate;
  /// Deletion weights / representation-cost accounting for kDelete and
  /// kHybrid.
  SubsetOptions subset;
};

/// Algorithm 2 (DATAREPAIR): repairs the changing cells `changing` of `I`
/// w.r.t. `sigma` in a single violation-free round. Suspects (Definition 6)
/// of the changing set are collected, their repair contexts assembled
/// (Section 4.1.2), decomposed into components, and each component is
/// solved — reusing `cache` entries across calls when the refinement test
/// of Proposition 6 allows (pass nullptr to disable sharing).
///
/// Returns std::nullopt when the accumulated repair cost exceeds
/// `delta_min` (Algorithm 2, lines 18-19); otherwise the repaired
/// instance, which satisfies `sigma` by Proposition 5.
///
/// `stats` collects solver calls / cache hits / fresh assignments;
/// `fresh_counter` supplies globally unique fresh-variable ids.
///
/// `encoded`, when given, must mirror `I` (in_sync); suspect detection
/// then runs on dictionary codes.
std::optional<Relation> DataRepairVfree(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr);

/// A component-scoped repair: the cell assignments that fix the dirty
/// components, without materializing a copy of the untouched remainder of
/// the instance. Assignments are in replay (component, cell) order; fresh
/// ids are already minted from the caller's counter.
struct ScopedRepair {
  std::vector<std::pair<Cell, Value>> assignments;
  double cost = 0.0;   ///< summed component solution costs
  int components = 0;  ///< components solved or answered by the cache
};

/// The component pipeline of Algorithm 2 without the whole-instance copy:
/// suspects of `changing` are collected, the repair context assembled and
/// decomposed, and each component solved (parallel pre-solve + serial
/// replay under `options.threads`, exactly as DataRepairVfree). Returns
/// std::nullopt on a `delta_min` cost abort. Applying the assignments to
/// `I` yields precisely DataRepairVfree's result — DataRepairVfree is
/// this function plus the copy.
std::optional<ScopedRepair> SolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr);

/// Sorts violations into the canonical (constraint_index, rows) order —
/// the order ViolationIndex::CurrentViolations emits. Entry points taking
/// an externally detected violation set canonicalize first, so a
/// delta-maintained set and a full-scan set that agree as *sets* yield
/// bit-identical repairs.
void CanonicalizeViolations(std::vector<Violation>* violations);

/// One violation-free repair round driven by an already-detected
/// violation set (e.g. the delta-maintained set of a StreamingRepairer):
/// canonicalize -> conflict hypergraph -> vertex cover -> SolveComponents.
/// Rows not reachable from `violations` are never touched, which is what
/// scopes a streaming batch's work to its dirty components.
std::optional<ScopedRepair> SolveDirtyComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, std::vector<Violation> violations,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr);

/// The standalone Vfree repair algorithm (Section 4): detects violations,
/// picks an approximate minimum vertex cover as the changing set, and runs
/// one round of DataRepairVfree. The result satisfies `sigma`.
RepairResult VfreeRepair(const Relation& I, const ConstraintSet& sigma,
                         const VfreeOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_VFREE_H_
