#ifndef CVREPAIR_REPAIR_VFREE_H_
#define CVREPAIR_REPAIR_VFREE_H_

#include <optional>

#include "dc/violation.h"
#include "graph/vertex_cover.h"
#include "relation/domain_stats.h"
#include "repair/costs.h"
#include "repair/repair_result.h"
#include "solver/csp_solver.h"
#include "solver/materialized_cache.h"

namespace cvrepair {

/// Options shared by the Vfree repair entry points.
struct VfreeOptions {
  CostModel cost;
  CoverHeuristic cover = CoverHeuristic::kGreedyDegree;
  SolverOptions solver;
  /// Thread budget for component solving: 0 = the global ThreadPool
  /// setting, 1 = the exact legacy serial path. Results are bit-identical
  /// across thread counts (components share no cells; fresh-variable ids
  /// are replayed in serial order).
  int threads = 0;
  /// Run violation/suspect detection on the dictionary-encoded columnar
  /// backend (relation/encoded.h) instead of boxed Values. Results are
  /// bit-identical either way; off = the legacy row-major scans.
  bool use_encoded = true;
};

/// Algorithm 2 (DATAREPAIR): repairs the changing cells `changing` of `I`
/// w.r.t. `sigma` in a single violation-free round. Suspects (Definition 6)
/// of the changing set are collected, their repair contexts assembled
/// (Section 4.1.2), decomposed into components, and each component is
/// solved — reusing `cache` entries across calls when the refinement test
/// of Proposition 6 allows (pass nullptr to disable sharing).
///
/// Returns std::nullopt when the accumulated repair cost exceeds
/// `delta_min` (Algorithm 2, lines 18-19); otherwise the repaired
/// instance, which satisfies `sigma` by Proposition 5.
///
/// `stats` collects solver calls / cache hits / fresh assignments;
/// `fresh_counter` supplies globally unique fresh-variable ids.
///
/// `encoded`, when given, must mirror `I` (in_sync); suspect detection
/// then runs on dictionary codes.
std::optional<Relation> DataRepairVfree(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr);

/// The standalone Vfree repair algorithm (Section 4): detects violations,
/// picks an approximate minimum vertex cover as the changing set, and runs
/// one round of DataRepairVfree. The result satisfies `sigma`.
RepairResult VfreeRepair(const Relation& I, const ConstraintSet& sigma,
                         const VfreeOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_VFREE_H_
