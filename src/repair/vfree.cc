#include "repair/vfree.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <set>

#include "dc/op.h"
#include "graph/bounds.h"
#include "graph/conflict_hypergraph.h"
#include "graph/decompose.h"
#include "relation/encoded.h"
#include "solver/components.h"
#include "solver/repair_context.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

// Cached handles for the "solve.*" decomposition work counters. The split
// plan is computed serially before the presolve and stitching runs in the
// serial replay, so all three are thread-count invariant (metrics.json
// safe).
MetricCounter* SplitCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.components_split");
  return c;
}
MetricCounter* StitchCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.stitch_merges");
  return c;
}
MetricCounter* GiantCellsCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.giant_component_cells");
  return c;
}
// CSP work actually spent (cache hits excluded): the per-component eval
// count is computed by Solve and carried in the solution, so the serial
// replay can publish it no matter which thread ran the solve.
MetricCounter* CspEvalsCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.csp_atom_evals");
  return c;
}
// Cells handed to the solver inside an oversized problem — the serial
// giant-component path decomposition exists to bypass. Counted whether or
// not decomposition is on, so an A/B run shows the drop directly.
MetricCounter* OversizedCellsCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.oversized_solver_cells");
  return c;
}
// Interval bound-tightenings spent by the numeric propagation passes
// (solver/interval.h) — carried per component like atom_evals, so the
// serial replay publishes a thread-count-invariant total.
MetricCounter* IntervalNarrowCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.interval_narrowings");
  return c;
}
// Fresh variables the solver actually minted — the fallback interval
// propagation exists to avoid. Pinned require_zero on workloads whose
// components are fully propagation-solvable.
MetricCounter* FreshFallbackCounter() {
  static MetricCounter* c =
      MetricsRegistry::Global().GetCounter("solve.fresh_fallbacks");
  return c;
}

// NULL and fresh values discharge any atom — the same semantics as the
// component solver's satisfaction check (csp_solver.cc), so the stitching
// check accepts exactly the assignments a merged solve would.
bool StitchAtomHolds(const RcAtom& atom, const std::vector<Value>& values) {
  const Value& lhs = values[atom.lhs_var];
  if (lhs.is_null() || lhs.is_fresh()) return true;
  const Value& rhs = atom.rhs_is_var ? values[atom.rhs_var] : atom.rhs_const;
  if (rhs.is_null() || rhs.is_fresh()) return true;
  return EvalOp(lhs, atom.op, rhs);
}

// Hybrid post-pass (strategy kHybrid): after the update solve, tombstone
// every row whose summed update cost exceeds its deletion weight. Sound
// because NULL discharges every atom — dropping a row's updates in favor
// of NULLs can only discharge more constraints, never re-violate one —
// and deterministic because it runs serially on the replayed assignment
// list, so every thread count and the streamed/scratch twins agree.
void ApplyHybridDeletions(const Relation& I, const DomainStats& stats_of_I,
                          const VfreeOptions& options, ScopedRepair* repair,
                          RepairStats* stats) {
  std::map<int, double> row_cost;
  for (const auto& [cell, value] : repair->assignments) {
    row_cost[cell.row] += options.cost.CellDist(cell, I.Get(cell), value);
  }
  std::set<int> doomed;
  for (const auto& [row, cost] : row_cost) {
    if (cost > RowDeletionWeight(I, stats_of_I, row, options.subset)) {
      doomed.insert(row);
    }
  }
  if (doomed.empty()) return;
  std::vector<std::pair<Cell, Value>> kept;
  kept.reserve(repair->assignments.size());
  for (auto& [cell, value] : repair->assignments) {
    if (doomed.count(cell.row)) {
      if (value.is_fresh() && stats) --stats->fresh_assignments;
      continue;
    }
    kept.emplace_back(cell, std::move(value));
  }
  for (int row : doomed) {  // ascending: std::set order
    for (AttrId a = 0; a < I.num_attributes(); ++a) {
      if (!I.Get(row, a).is_null()) {
        kept.emplace_back(Cell{row, a}, Value::Null());
      }
    }
    repair->cost +=
        RowDeletionWeight(I, stats_of_I, row, options.subset) - row_cost[row];
    if (stats) ++stats->rows_deleted;
  }
  repair->assignments = std::move(kept);
}

}  // namespace

std::optional<ScopedRepair> SolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  TraceSpan repair_span("vfree/data_repair");
  // Touch the solve.* counters up front so they appear (as zeros) in every
  // metrics snapshot — require_zero baselines distinguish "0" from
  // "missing".
  SplitCounter();
  StitchCounter();
  GiantCellsCounter();
  CspEvalsCounter();
  OversizedCellsCounter();
  IntervalNarrowCounter();
  FreshFallbackCounter();
  CellSet changing_set(changing.begin(), changing.end());
  std::vector<Violation> suspects;
  {
    TraceSpan span("vfree/find_suspects");
    suspects = encoded ? FindSuspects(*encoded, sigma, changing_set)
                       : FindSuspects(I, sigma, changing_set);
    span.AddArg("suspects", static_cast<int64_t>(suspects.size()));
  }
  if (stats) stats->suspects += static_cast<int>(suspects.size());

  RepairContext rc = RepairContext::Build(I, sigma, changing, suspects);
  std::vector<Component> components = DecomposeComponents(rc);
  repair_span.AddArg("components", static_cast<int64_t>(components.size()));

  CspSolver solver(I, stats_of_I, options.cost, fresh_counter, options.solver);

  // Topology-aware decomposition (DESIGN.md §12): plan the splits before
  // the presolve so the parallel and the serial paths see the same
  // flattened work list. The plan is a pure function of the components, so
  // the solve.* counters stay thread-count invariant.
  std::vector<SplitPlan> plans;
  if (options.decompose) {
    DecomposeOptions dopts;
    dopts.max_component = options.max_component;
    plans.resize(components.size());
    for (size_t ci = 0; ci < components.size(); ++ci) {
      const Component& comp = components[ci];
      if (static_cast<int>(comp.cells.size()) <= options.max_component) {
        continue;
      }
      GiantCellsCounter()->Add(static_cast<int64_t>(comp.cells.size()));
      if (stats) {
        stats->giant_component_cells +=
            static_cast<int64_t>(comp.cells.size());
      }
      plans[ci] = SplitComponent(comp, dopts);
      if (plans[ci].split()) {
        SplitCounter()->Increment();
        if (stats) ++stats->components_split;
      }
    }
  }
  auto is_split = [&](size_t ci) {
    return !plans.empty() && plans[ci].split();
  };
  // Flattened solve units: each unsplit component, or each part of a split
  // one (contiguous, starting at unit_of[ci]).
  std::vector<const Component*> units;
  std::vector<size_t> unit_of(components.size(), 0);
  for (size_t ci = 0; ci < components.size(); ++ci) {
    unit_of[ci] = units.size();
    if (is_split(ci)) {
      for (const Component& part : plans[ci].parts) units.push_back(&part);
    } else {
      units.push_back(&components[ci]);
    }
  }

  // Units share no cells, so they are solved concurrently and the
  // solutions replayed serially below. Each pre-solve draws fresh ids from
  // a private counter: the solver's chosen assignment never depends on the
  // counter's value, and fresh ids are re-minted from the shared counter
  // during the replay — which also performs the cache lookups/stores in
  // unit order — so the result is bit-identical to the serial path.
  // (A pre-solve is wasted when the replay's cache lookup hits, including
  // hits on entries stored earlier in this very replay; correctness and
  // determinism take precedence over that overlap.)
  const bool presolve =
      ThreadPool::EffectiveThreads(options.threads) > 1 && units.size() > 1;
  std::vector<ComponentSolution> presolved;
  if (presolve) {
    TraceSpan span("vfree/presolve_components");
    presolved.resize(units.size());
    ThreadPool::ParallelFor(
        static_cast<int64_t>(units.size()),
        [&](int64_t i) {
          TraceSpan solve_span("vfree/solve_component");
          solve_span.AddArg("component", i);
          int64_t private_fresh = 1;
          CspSolver local(I, stats_of_I, options.cost, &private_fresh,
                          options.solver);
          presolved[static_cast<size_t>(i)] =
              local.Solve(*units[static_cast<size_t>(i)]);
        },
        options.threads);
  }

  TraceSpan replay_span("vfree/replay_components");
  ScopedRepair result;
  result.components = static_cast<int>(components.size());
  constexpr size_t kNoUnit = static_cast<size_t>(-1);
  // One unit's solution via the shared cache/presolve/serial protocol.
  // `unit` = kNoUnit for stitching merges, which never have a presolve.
  auto resolve = [&](const Component& comp, size_t unit) {
    ComponentSolution solution;
    bool from_cache = false;
    if (cache) {
      bool prior_epoch = false;
      if (std::optional<ComponentSolution> hit =
              cache->Lookup(comp, &prior_epoch)) {
        solution = std::move(*hit);
        from_cache = true;
        if (stats) ++stats->cache_hits;
        if (prior_epoch) {
          // A cross-batch hit stands in for the solve a cold per-batch
          // cache would have run: advance the shared counter exactly as
          // that solve would (the re-mint loop below draws its own ids on
          // top), and re-store the entry at the current epoch so later
          // lookups in this pass see it under the refinement rule, in the
          // same store order a cold cache would have produced. Both steps
          // are what keep a persistent cache bit-identical to a cold one.
          *fresh_counter += solution.fresh_count;
          cache->Store(comp, solution);
        }
      }
    }
    if (!from_cache) {
      if (presolve && unit != kNoUnit) {
        solution = std::move(presolved[unit]);
        // Advance the shared counter exactly as the serial solve would
        // have (Solve draws one id per fresh assignment).
        *fresh_counter += solution.fresh_count;
      } else {
        TraceSpan solve_span("vfree/solve_component");
        solution = solver.Solve(comp);
      }
      if (stats) ++stats->solver_calls;
      if (cache) cache->Store(comp, solution);
      // Work counters, published from the serial replay only so they are
      // thread-count invariant (the presolve's call set is not).
      CspEvalsCounter()->Add(solution.atom_evals);
      IntervalNarrowCounter()->Add(solution.interval_narrowings);
      FreshFallbackCounter()->Add(solution.fresh_count);
      if (static_cast<int>(comp.cells.size()) > options.max_component) {
        OversizedCellsCounter()->Add(
            static_cast<int64_t>(comp.cells.size()));
      }
    }
    return solution;
  };
  // Emits one component's final values (re-minting fresh ids so cached
  // solutions never alias fv names) and enforces the Alg. 2 cost abort.
  auto emit = [&](const std::vector<Cell>& cells,
                  const std::vector<Value>& values, double cost) {
    for (size_t v = 0; v < cells.size(); ++v) {
      Value value = values[v];
      if (value.is_fresh()) {
        value = Value::Fresh((*fresh_counter)++);
        if (stats) ++stats->fresh_assignments;
      }
      result.assignments.emplace_back(cells[v], std::move(value));
    }
    result.cost += cost;
    return result.cost <= delta_min;  // Alg. 2 lines 18-19
  };

  for (size_t ci = 0; ci < components.size(); ++ci) {
    const Component& comp = components[ci];
    if (!is_split(ci)) {
      ComponentSolution solution = resolve(comp, unit_of[ci]);
      if (!emit(comp.cells, solution.values, solution.cost)) {
        return std::nullopt;
      }
      continue;
    }

    // Split path: solve the parts independently, then stitch — re-verify
    // the boundary-straddling atoms on the combined assignment and merge +
    // re-solve only the regions that still conflict. Every merge round
    // strictly decreases the live part count, so the loop terminates; the
    // worst case degenerates to the original undecomposed component, whose
    // solve satisfies every atom by construction.
    const SplitPlan& plan = plans[ci];
    const int n = static_cast<int>(comp.cells.size());
    const size_t num_parts = plan.parts.size();
    std::vector<double> part_cost(num_parts, 0.0);
    std::vector<bool> live(num_parts, true);
    std::vector<Value> combined(n);
    std::vector<int> cur_part(n);
    std::vector<std::vector<int>> part_vars(num_parts);
    for (int v = 0; v < n; ++v) {
      cur_part[v] = plan.part_of[v];
      part_vars[plan.part_of[v]].push_back(v);  // ascending = local id order
    }
    for (size_t p = 0; p < num_parts; ++p) {
      ComponentSolution psol = resolve(plan.parts[p], unit_of[ci] + p);
      part_cost[p] = psol.cost;
      for (size_t i = 0; i < part_vars[p].size(); ++i) {
        combined[part_vars[p][i]] = psol.values[i];
      }
    }

    while (true) {
      // Union-find over part ids, rooted at the smallest id of each group.
      std::vector<int> parent(num_parts);
      for (size_t p = 0; p < num_parts; ++p) parent[p] = static_cast<int>(p);
      auto find = [&](int x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      bool any_violated = false;
      for (const RcAtom& a : plan.cross_atoms) {
        const int pl = cur_part[a.lhs_var];
        const int pr = cur_part[a.rhs_var];
        if (pl == pr) continue;  // merged earlier: satisfied internally
        if (StitchAtomHolds(a, combined)) continue;
        any_violated = true;
        const int rl = find(pl);
        const int rr = find(pr);
        if (rl != rr) parent[std::max(rl, rr)] = std::min(rl, rr);
      }
      if (!any_violated) break;
      // Merge each still-conflicting group (ascending root id) and
      // re-solve it as one component over all of its original atoms.
      for (size_t root = 0; root < num_parts; ++root) {
        if (!live[root] || find(static_cast<int>(root)) !=
                               static_cast<int>(root)) {
          continue;
        }
        std::vector<int> vars;
        bool group = false;
        for (int v = 0; v < n; ++v) {
          if (find(cur_part[v]) == static_cast<int>(root)) {
            vars.push_back(v);
            group |= cur_part[v] != static_cast<int>(root);
          }
        }
        if (!group) continue;  // singleton: nothing merged into this root
        Component merged = RestrictComponent(comp, vars);
        StitchCounter()->Increment();
        if (stats) ++stats->stitch_merges;
        ComponentSolution msol = resolve(merged, kNoUnit);
        for (size_t i = 0; i < vars.size(); ++i) {
          const int v = vars[i];
          if (live[cur_part[v]] && cur_part[v] != static_cast<int>(root)) {
            live[cur_part[v]] = false;
          }
          cur_part[v] = static_cast<int>(root);
          combined[v] = msol.values[i];
        }
        part_cost[root] = msol.cost;
      }
    }

    double comp_cost = 0.0;
    for (size_t p = 0; p < num_parts; ++p) {
      if (live[p]) comp_cost += part_cost[p];
    }
    if (!emit(comp.cells, combined, comp_cost)) return std::nullopt;
  }
  if (options.strategy == RepairStrategy::kHybrid) {
    ApplyHybridDeletions(I, stats_of_I, options, &result, stats);
  }
  return result;
}

std::optional<Relation> DataRepairVfree(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  std::optional<ScopedRepair> scoped =
      SolveComponents(I, stats_of_I, sigma, changing, delta_min, options,
                      cache, stats, fresh_counter, encoded);
  if (!scoped) return std::nullopt;
  Relation repaired = I;
  for (auto& [cell, value] : scoped->assignments) {
    repaired.SetValue(cell, std::move(value));
  }
  return repaired;
}

void CanonicalizeViolations(std::vector<Violation>* violations) {
  std::sort(violations->begin(), violations->end(),
            [](const Violation& a, const Violation& b) {
              if (a.constraint_index != b.constraint_index) {
                return a.constraint_index < b.constraint_index;
              }
              return a.rows < b.rows;
            });
}

std::optional<ScopedRepair> SolveDirtyComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, std::vector<Violation> violations,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  if (violations.empty()) return ScopedRepair{};
  CanonicalizeViolations(&violations);
  if (options.strategy == RepairStrategy::kDelete) {
    // Subset repair: resolve by tuple deletion over the tuple projection —
    // no repair contexts, no solver, no cache. One cover pass is always
    // violation-free (NULL discharges every predicate) and deletions can
    // never create new violations, so this mirrors the single-round
    // guarantee of the update path.
    SubsetRepair sub =
        SubsetCoverRepair(I, stats_of_I, violations, options.subset, stats);
    ScopedRepair result;
    result.assignments = std::move(sub.assignments);
    result.cost = sub.cost;
    result.components = sub.rows_deleted;
    if (result.cost > delta_min) return std::nullopt;  // Alg. 2 lines 18-19
    return result;
  }
  ConflictHypergraph g =
      ConflictHypergraph::Build(I, sigma, violations, options.cost);
  VertexCover cover = ApproximateVertexCover(g, options.cover, &stats_of_I);
  std::vector<Cell> changing = cover.Cells(g);
  return SolveComponents(I, stats_of_I, sigma, changing, delta_min, options,
                         cache, stats, fresh_counter, encoded);
}

RepairResult VfreeRepair(const Relation& I, const ConstraintSet& sigma,
                         const VfreeOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;
  result.satisfied_constraints = sigma;
  result.stats.rounds = 1;

  std::optional<EncodedRelation> E;
  if (options.use_encoded) E.emplace(I);
  std::vector<Violation> violations =
      E ? FindViolations(*E, sigma) : FindViolations(I, sigma);
  result.stats.initial_violations = static_cast<int>(violations.size());

  DomainStats stats_of_I(I);
  if (options.strategy == RepairStrategy::kDelete) {
    CanonicalizeViolations(&violations);
    SubsetRepair sub = SubsetCoverRepair(I, stats_of_I, violations,
                                         options.subset, &result.stats);
    result.repaired = I;
    for (auto& [cell, value] : sub.assignments) {
      result.repaired.SetValue(cell, std::move(value));
    }
    result.stats.changed_cells = ChangedCellCount(I, result.repaired);
    result.stats.repair_cost = sub.cost;
    result.stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
  }
  ConflictHypergraph g =
      ConflictHypergraph::Build(I, sigma, violations, options.cost);
  VertexCover cover = ApproximateVertexCover(g, options.cover, &stats_of_I);
  std::vector<Cell> changing = cover.Cells(g);

  int64_t fresh_counter = 1;
  std::optional<Relation> repaired = DataRepairVfree(
      I, stats_of_I, sigma, changing,
      std::numeric_limits<double>::infinity(), options,
      /*cache=*/nullptr, &result.stats, &fresh_counter,
      E ? &*E : nullptr);
  // With an infinite bound DataRepairVfree always succeeds.
  result.repaired = std::move(*repaired);
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost =
      options.strategy == RepairStrategy::kUpdate
          ? RepairCost(I, result.repaired, options.cost)
          : StrategyRepairCost(I, result.repaired, options.cost,
                               options.strategy, options.subset, stats_of_I);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
