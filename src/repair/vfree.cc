#include "repair/vfree.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "graph/bounds.h"
#include "graph/conflict_hypergraph.h"
#include "relation/encoded.h"
#include "solver/components.h"
#include "solver/repair_context.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

std::optional<ScopedRepair> SolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  TraceSpan repair_span("vfree/data_repair");
  CellSet changing_set(changing.begin(), changing.end());
  std::vector<Violation> suspects;
  {
    TraceSpan span("vfree/find_suspects");
    suspects = encoded ? FindSuspects(*encoded, sigma, changing_set)
                       : FindSuspects(I, sigma, changing_set);
    span.AddArg("suspects", static_cast<int64_t>(suspects.size()));
  }
  if (stats) stats->suspects += static_cast<int>(suspects.size());

  RepairContext rc = RepairContext::Build(I, sigma, changing, suspects);
  std::vector<Component> components = DecomposeComponents(rc);
  repair_span.AddArg("components", static_cast<int64_t>(components.size()));

  CspSolver solver(I, stats_of_I, options.cost, fresh_counter, options.solver);

  // Components share no cells, so they are solved concurrently and the
  // solutions replayed serially below. Each pre-solve draws fresh ids from
  // a private counter: the solver's chosen assignment never depends on the
  // counter's value, and fresh ids are re-minted from the shared counter
  // during the replay — which also performs the cache lookups/stores in
  // component order — so the result is bit-identical to the serial path.
  // (A pre-solve is wasted when the replay's cache lookup hits, including
  // hits on entries stored earlier in this very replay; correctness and
  // determinism take precedence over that overlap.)
  const bool presolve =
      ThreadPool::EffectiveThreads(options.threads) > 1 && components.size() > 1;
  std::vector<ComponentSolution> presolved;
  if (presolve) {
    TraceSpan span("vfree/presolve_components");
    presolved.resize(components.size());
    ThreadPool::ParallelFor(
        static_cast<int64_t>(components.size()),
        [&](int64_t i) {
          TraceSpan solve_span("vfree/solve_component");
          solve_span.AddArg("component", i);
          int64_t private_fresh = 1;
          CspSolver local(I, stats_of_I, options.cost, &private_fresh,
                          options.solver);
          presolved[static_cast<size_t>(i)] =
              local.Solve(components[static_cast<size_t>(i)]);
        },
        options.threads);
  }

  TraceSpan replay_span("vfree/replay_components");
  ScopedRepair result;
  result.components = static_cast<int>(components.size());
  for (size_t ci = 0; ci < components.size(); ++ci) {
    const Component& comp = components[ci];
    ComponentSolution solution;
    bool from_cache = false;
    if (cache) {
      bool prior_epoch = false;
      if (std::optional<ComponentSolution> hit =
              cache->Lookup(comp, &prior_epoch)) {
        solution = std::move(*hit);
        from_cache = true;
        if (stats) ++stats->cache_hits;
        if (prior_epoch) {
          // A cross-batch hit stands in for the solve a cold per-batch
          // cache would have run: advance the shared counter exactly as
          // that solve would (the re-mint loop below draws its own ids on
          // top), and re-store the entry at the current epoch so later
          // lookups in this pass see it under the refinement rule, in the
          // same store order a cold cache would have produced. Both steps
          // are what keep a persistent cache bit-identical to a cold one.
          *fresh_counter += solution.fresh_count;
          cache->Store(comp, solution);
        }
      }
    }
    if (!from_cache) {
      if (presolve) {
        solution = std::move(presolved[ci]);
        // Advance the shared counter exactly as the serial solve would
        // have (Solve draws one id per fresh assignment).
        *fresh_counter += solution.fresh_count;
      } else {
        TraceSpan solve_span("vfree/solve_component");
        solve_span.AddArg("component", static_cast<int64_t>(ci));
        solution = solver.Solve(comp);
      }
      if (stats) ++stats->solver_calls;
      if (cache) cache->Store(comp, solution);
    }
    for (size_t v = 0; v < comp.cells.size(); ++v) {
      Value value = solution.values[v];
      // Re-mint fresh ids so cached solutions never alias fv names.
      if (value.is_fresh()) {
        value = Value::Fresh((*fresh_counter)++);
        if (stats) ++stats->fresh_assignments;
      }
      result.assignments.emplace_back(comp.cells[v], std::move(value));
    }
    result.cost += solution.cost;
    if (result.cost > delta_min) return std::nullopt;  // Alg. 2 lines 18-19
  }
  return result;
}

std::optional<Relation> DataRepairVfree(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, const std::vector<Cell>& changing,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  std::optional<ScopedRepair> scoped =
      SolveComponents(I, stats_of_I, sigma, changing, delta_min, options,
                      cache, stats, fresh_counter, encoded);
  if (!scoped) return std::nullopt;
  Relation repaired = I;
  for (auto& [cell, value] : scoped->assignments) {
    repaired.SetValue(cell, std::move(value));
  }
  return repaired;
}

void CanonicalizeViolations(std::vector<Violation>* violations) {
  std::sort(violations->begin(), violations->end(),
            [](const Violation& a, const Violation& b) {
              if (a.constraint_index != b.constraint_index) {
                return a.constraint_index < b.constraint_index;
              }
              return a.rows < b.rows;
            });
}

std::optional<ScopedRepair> SolveDirtyComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& sigma, std::vector<Violation> violations,
    double delta_min, const VfreeOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded) {
  if (violations.empty()) return ScopedRepair{};
  CanonicalizeViolations(&violations);
  ConflictHypergraph g =
      ConflictHypergraph::Build(I, sigma, violations, options.cost);
  VertexCover cover = ApproximateVertexCover(g, options.cover);
  std::vector<Cell> changing = cover.Cells(g);
  return SolveComponents(I, stats_of_I, sigma, changing, delta_min, options,
                         cache, stats, fresh_counter, encoded);
}

RepairResult VfreeRepair(const Relation& I, const ConstraintSet& sigma,
                         const VfreeOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;
  result.satisfied_constraints = sigma;
  result.stats.rounds = 1;

  std::optional<EncodedRelation> E;
  if (options.use_encoded) E.emplace(I);
  std::vector<Violation> violations =
      E ? FindViolations(*E, sigma) : FindViolations(I, sigma);
  result.stats.initial_violations = static_cast<int>(violations.size());

  DomainStats stats_of_I(I);
  ConflictHypergraph g =
      ConflictHypergraph::Build(I, sigma, violations, options.cost);
  VertexCover cover = ApproximateVertexCover(g, options.cover);
  std::vector<Cell> changing = cover.Cells(g);

  int64_t fresh_counter = 1;
  std::optional<Relation> repaired = DataRepairVfree(
      I, stats_of_I, sigma, changing,
      std::numeric_limits<double>::infinity(), options,
      /*cache=*/nullptr, &result.stats, &fresh_counter,
      E ? &*E : nullptr);
  // With an infinite bound DataRepairVfree always succeeds.
  result.repaired = std::move(*repaired);
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
