#include "repair/subset.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cvrepair {

std::string RepairStrategyToString(RepairStrategy strategy) {
  switch (strategy) {
    case RepairStrategy::kUpdate:
      return "update";
    case RepairStrategy::kDelete:
      return "delete";
    case RepairStrategy::kHybrid:
      return "hybrid";
  }
  return "update";
}

bool ParseRepairStrategy(const std::string& token, RepairStrategy* out) {
  if (token == "update") {
    *out = RepairStrategy::kUpdate;
  } else if (token == "delete") {
    *out = RepairStrategy::kDelete;
  } else if (token == "hybrid") {
    *out = RepairStrategy::kHybrid;
  } else {
    return false;
  }
  return true;
}

double RowDeletionWeight(const Relation& I, const DomainStats& stats, int row,
                         const SubsetOptions& options) {
  if (options.repr_attr < 0 || I.num_rows() == 0) return options.delete_base;
  const Value& group = I.Get(row, options.repr_attr);
  // NULL/fresh group values are excluded from the frequency table, which
  // makes them a vanishing group — maximally protected, and exactly what a
  // tombstoned row reads as (its weight is never consulted again anyway).
  int freq = (group.is_null() || group.is_fresh())
                 ? 0
                 : stats.Frequency(options.repr_attr, group);
  double share = static_cast<double>(freq) / I.num_rows();
  return options.delete_base * (1.0 + options.alpha * (1.0 - share));
}

SubsetRepair SubsetCoverRepair(const Relation& I, const DomainStats& stats_of_I,
                               const std::vector<Violation>& violations,
                               const SubsetOptions& options,
                               RepairStats* stats) {
  SubsetRepair result;
  // Hyperedges of the tuple projection: each violation's deduplicated row
  // set (a single-tuple violation is a unit edge and forces its row).
  std::vector<std::vector<int>> edges;
  edges.reserve(violations.size());
  std::unordered_map<int, std::vector<int>> edges_of_row;
  for (const Violation& v : violations) {
    std::vector<int> rows = v.rows;
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    int e = static_cast<int>(edges.size());
    for (int r : rows) edges_of_row[r].push_back(e);
    edges.push_back(std::move(rows));
  }

  std::unordered_map<int, double> weight_of;
  auto weight = [&](int row) {
    auto it = weight_of.find(row);
    if (it != weight_of.end()) return it->second;
    double w = RowDeletionWeight(I, stats_of_I, row, options);
    weight_of.emplace(row, w);
    return w;
  };

  // Greedy weighted cover: repeatedly delete the row with the best
  // uncovered-edges-per-weight ratio (ties to the smaller row id — the
  // deterministic tie-break every cover heuristic in this repo uses).
  std::vector<bool> covered(edges.size(), false);
  size_t remaining = edges.size();
  std::unordered_set<int> deleted;
  while (remaining > 0) {
    int best_row = -1;
    double best_ratio = 0.0;
    for (const auto& [row, incident] : edges_of_row) {
      if (deleted.count(row)) continue;
      int uncovered = 0;
      for (int e : incident) {
        if (!covered[e]) ++uncovered;
      }
      if (uncovered == 0) continue;
      double ratio = uncovered / weight(row);
      if (best_row == -1 || ratio > best_ratio ||
          (ratio == best_ratio && row < best_row)) {
        best_row = row;
        best_ratio = ratio;
      }
    }
    if (best_row == -1) break;  // every remaining edge is already covered
    deleted.insert(best_row);
    result.cost += weight(best_row);
    for (int e : edges_of_row[best_row]) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
      }
    }
  }

  // Tombstone in ascending row order so the assignment list is canonical.
  std::vector<int> rows(deleted.begin(), deleted.end());
  std::sort(rows.begin(), rows.end());
  for (int row : rows) {
    for (AttrId a = 0; a < I.num_attributes(); ++a) {
      if (!I.Get(row, a).is_null()) {
        result.assignments.emplace_back(Cell{row, a}, Value::Null());
      }
    }
  }
  result.rows_deleted = static_cast<int>(rows.size());
  if (stats) stats->rows_deleted += result.rows_deleted;
  return result;
}

bool RowDeleted(const Relation& before, const Relation& after, int row) {
  bool was_all_null = true;
  for (AttrId a = 0; a < before.num_attributes(); ++a) {
    if (!before.Get(row, a).is_null()) {
      was_all_null = false;
      break;
    }
  }
  if (was_all_null) return false;
  for (AttrId a = 0; a < after.num_attributes(); ++a) {
    if (!after.Get(row, a).is_null()) return false;
  }
  return true;
}

double StrategyRepairCost(const Relation& before, const Relation& after,
                          const CostModel& cost, RepairStrategy strategy,
                          const SubsetOptions& options,
                          const DomainStats& stats_of_before) {
  if (strategy == RepairStrategy::kUpdate) {
    return RepairCost(before, after, cost);
  }
  double total = 0.0;
  for (int row = 0; row < before.num_rows(); ++row) {
    if (RowDeleted(before, after, row)) {
      total += RowDeletionWeight(before, stats_of_before, row, options);
      continue;
    }
    for (AttrId a = 0; a < before.num_attributes(); ++a) {
      const Value& b = before.Get(row, a);
      const Value& v = after.Get(row, a);
      if (!(b == v)) total += cost.CellDist({row, a}, b, v);
    }
  }
  return total;
}

}  // namespace cvrepair
