#include "repair/greedy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "dc/violation.h"
#include "graph/conflict_hypergraph.h"
#include "graph/vertex_cover.h"
#include "relation/domain_stats.h"
#include "relation/encoded.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

// Inverse-predicate constraint on a single cell against a fixed value.
struct LocalAtom {
  Op op;
  Value fixed;
};

}  // namespace

RepairResult GreedyRepair(const Relation& I, const ConstraintSet& sigma,
                          const GreedyOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;
  result.satisfied_constraints = sigma;

  Relation current = I;
  std::unordered_map<Cell, int, CellHash> touches;
  int64_t fresh = 1;
  const int kMaxRounds = 30;
  int iterations = 0;

  // Coded mirror of the working copy, delta-updated beside every SetValue.
  std::optional<EncodedRelation> encoded;
  if (options.use_encoded) encoded.emplace(current);
  auto set_value = [&](const Cell& cell, Value value) {
    current.SetValue(cell, std::move(value));
    if (encoded) encoded->ApplyChange(cell.row, cell.attr);
  };

  TraceSpan repair_span("greedy/repair");
  for (int round = 0; round < kMaxRounds; ++round) {
    TraceSpan round_span("greedy/round");
    round_span.AddArg("round", round);
    std::vector<Violation> violations = encoded
                                            ? FindViolations(*encoded, sigma)
                                            : FindViolations(current, sigma);
    if (round == 0) {
      result.stats.initial_violations = static_cast<int>(violations.size());
    }
    if (violations.empty()) break;
    ++result.stats.rounds;

    ConflictHypergraph g =
        ConflictHypergraph::Build(current, sigma, violations, options.cost);
    VertexCover cover =
        ApproximateVertexCover(g, CoverHeuristic::kGreedyDegree);
    std::vector<Cell> picked = cover.Cells(g);
    CellSet picked_set(picked.begin(), picked.end());
    DomainStats stats(current);

    // Local inverse constraints per picked cell, derived from its own
    // violations only (the greedy short-sightedness the paper contrasts
    // with Vfree): other cells are treated as fixed at current values.
    std::unordered_map<Cell, std::vector<LocalAtom>, CellHash> atoms;
    for (const Violation& v : violations) {
      const DenialConstraint& c = sigma[v.constraint_index];
      for (const Predicate& p : c.predicates()) {
        Cell lhs{v.rows[p.lhs().tuple], p.lhs().attr};
        if (p.has_constant()) {
          if (picked_set.count(lhs)) {
            atoms[lhs].push_back({Inverse(p.op()), p.constant()});
          }
          continue;
        }
        Cell rhs{v.rows[p.rhs_cell().tuple], p.rhs_cell().attr};
        if (picked_set.count(lhs)) {
          atoms[lhs].push_back({Inverse(p.op()), current.Get(rhs)});
        } else if (picked_set.count(rhs)) {
          atoms[rhs].push_back(
              {FlipOperands(Inverse(p.op())), current.Get(lhs)});
        }
      }
    }

    for (const Cell& cell : picked) {
      if (++iterations > options.max_iterations) break;
      int& t = touches[cell];
      ++t;
      if (t > options.max_touches_per_cell) {
        set_value(cell, Value::Fresh(fresh++));
        ++result.stats.fresh_assignments;
        continue;
      }
      const std::vector<LocalAtom>& local = atoms[cell];
      const Value original = current.Get(cell);
      Value best_value = Value::Fresh(0);
      int best_sat = -1;
      double best_dist = 0.0;
      for (const auto& [candidate, freq] : stats.attr(cell.attr).frequencies) {
        (void)freq;
        if (candidate == original) continue;
        int sat = 0;
        for (const LocalAtom& a : local) {
          if (EvalOp(candidate, a.op, a.fixed)) ++sat;
        }
        double dist =
            (candidate.is_numeric() && original.is_numeric())
                ? std::abs(candidate.numeric() - original.numeric())
                : 0.0;
        if (sat > best_sat || (sat == best_sat && dist < best_dist)) {
          best_sat = sat;
          best_value = candidate;
          best_dist = dist;
        }
      }
      if (best_sat < static_cast<int>(local.size()) || best_value.is_fresh()) {
        // No domain value settles every local conflict: fresh variable.
        set_value(cell, Value::Fresh(fresh++));
        ++result.stats.fresh_assignments;
      } else {
        set_value(cell, best_value);
      }
    }
    if (iterations > options.max_iterations) break;
  }

  // Safety net: force fresh variables over any remaining conflicts.
  std::vector<Violation> remaining = encoded
                                         ? FindViolations(*encoded, sigma)
                                         : FindViolations(current, sigma);
  if (!remaining.empty()) {
    ConflictHypergraph g =
        ConflictHypergraph::Build(current, sigma, remaining, options.cost);
    VertexCover cover =
        ApproximateVertexCover(g, CoverHeuristic::kGreedyDegree);
    for (const Cell& cell : cover.Cells(g)) {
      set_value(cell, Value::Fresh(fresh++));
      ++result.stats.fresh_assignments;
    }
  }

  result.repaired = std::move(current);
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
