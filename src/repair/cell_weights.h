#ifndef CVREPAIR_REPAIR_CELL_WEIGHTS_H_
#define CVREPAIR_REPAIR_CELL_WEIGHTS_H_

#include <unordered_map>

#include "relation/relation.h"

namespace cvrepair {

/// Per-cell weights w(t.A) of Definition 1 — typically the confidence of
/// the cell's current value. Cells default to weight 1; weights scale a
/// cell's repair cost, so high-confidence cells are touched last by the
/// cover heuristics and cost more in Δ(I, I').
class CellWeights {
 public:
  CellWeights() = default;

  void Set(const Cell& cell, double weight) { weights_[cell] = weight; }
  void Set(int row, AttrId attr, double weight) {
    Set(Cell{row, attr}, weight);
  }

  double Get(const Cell& cell) const {
    auto it = weights_.find(cell);
    return it == weights_.end() ? 1.0 : it->second;
  }

  bool empty() const { return weights_.empty(); }
  size_t size() const { return weights_.size(); }

  /// Builds value-frequency confidences: a cell whose value is shared by
  /// `k` of the `n` rows of its attribute gets weight
  /// base + scale * k / max_k — corroborated values become expensive to
  /// change. A cheap, data-driven stand-in for source confidences.
  static CellWeights FromValueFrequencies(const Relation& I,
                                          double base = 0.5,
                                          double scale = 1.0);

 private:
  std::unordered_map<Cell, double, CellHash> weights_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_CELL_WEIGHTS_H_
