#ifndef CVREPAIR_REPAIR_UNIFIED_H_
#define CVREPAIR_REPAIR_UNIFIED_H_

#include "repair/costs.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// Options for the Unified baseline.
struct UnifiedOptions {
  CostModel cost;
  /// Description-length price of enlarging an FD by one attribute
  /// (Chiang & Miller weigh a constraint repair by the size of the FD
  /// times the number of retained patterns; this scalar plays that role).
  double constraint_repair_weight = 20.0;
  /// Maximum attributes appended to an FD's left-hand side when a
  /// constraint repair is chosen.
  int max_added_attrs = 1;
  /// Attributes never appended (row-unique / meaningless extensions, the
  /// static counterpart of CVtolerant's conditional-support test).
  std::vector<AttrId> excluded_attrs;
};

/// Unified data/constraint repair (Chiang & Miller, ICDE 2011 [5]): one
/// description-length-style cost model prices both alternatives for every
/// FD — repairing the data (majority merge; cost = number of modified
/// cells) or repairing the constraint (appending the best LHS attribute;
/// cost = constraint_repair_weight · new FD size + remaining violating
/// cells). The cheaper alternative is applied, which reproduces the
/// characteristic cliff in changed-cell counts when constraint repair
/// overtakes data repair (Figure 11). Only insertion-based constraint
/// repairs are considered — the oversimplification-only assumption the
/// paper's CVtolerant removes. Accepts FD-shaped constraint sets only.
RepairResult UnifiedRepair(const Relation& I, const ConstraintSet& sigma,
                           const UnifiedOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_UNIFIED_H_
