#include "repair/repair_result.h"

#include <sstream>

#include "util/metrics.h"

namespace cvrepair {

std::string RepairStats::ToString() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " solver_calls=" << solver_calls
     << " cache_hits=" << cache_hits << " fresh=" << fresh_assignments
     << " changed=" << changed_cells << " cost=" << repair_cost
     << " violations=" << initial_violations;
  if (rows_deleted > 0) os << " rows_deleted=" << rows_deleted;
  if (giant_component_cells > 0 || components_split > 0) {
    os << " components_split=" << components_split
       << " stitch_merges=" << stitch_merges
       << " giant_cells=" << giant_component_cells;
  }
  if (variants_enumerated > 0) {
    os << " variants=" << variants_enumerated
       << " pruned_bounds=" << variants_pruned_bounds
       << " datarepair_calls=" << datarepair_calls
       << " partition_builds=" << index_partition_builds
       << " partition_reuses=" << index_partition_reuses
       << " predicate_evals=" << index_predicate_evals
       << " code_evals=" << index_code_evals
       << " memo_hits=" << index_memo_hits
       << " truncated_scans=" << index_truncated_scans
       << " blocks_scanned=" << index_blocks_scanned
       << " blocks_skipped=" << index_blocks_skipped
       << " bound_memo_hits=" << bound_memo_hits;
  }
  os << " time=" << elapsed_seconds << "s";
  return os.str();
}

void PublishRepairStats(const RepairStats& stats) {
  MetricsRegistry& r = MetricsRegistry::Global();
  r.GetCounter("repair.rounds")->Add(stats.rounds);
  r.GetCounter("repair.solver_calls")->Add(stats.solver_calls);
  r.GetCounter("repair.cache_hits")->Add(stats.cache_hits);
  r.GetCounter("repair.fresh_assignments")->Add(stats.fresh_assignments);
  r.GetCounter("repair.changed_cells")->Add(stats.changed_cells);
  r.GetCounter("repair.initial_violations")->Add(stats.initial_violations);
  r.GetCounter("repair.suspects")->Add(stats.suspects);
  r.GetCounter("repair.rows_deleted")->Add(stats.rows_deleted);
  r.GetCounter("repair.variants_enumerated")->Add(stats.variants_enumerated);
  r.GetCounter("repair.variants_pruned_nonmaximal")
      ->Add(stats.variants_pruned_nonmaximal);
  r.GetCounter("repair.variants_pruned_bounds")
      ->Add(stats.variants_pruned_bounds);
  r.GetCounter("repair.datarepair_calls")->Add(stats.datarepair_calls);
  r.GetCounter("repair.bound_memo_hits")->Add(stats.bound_memo_hits);
  // The decomposition fields (components_split / stitch_merges /
  // giant_component_cells) are deliberately *not* republished: the vfree
  // engine already increments the "solve.*" registry counters at the
  // moment it splits or stitches, exactly like the eval-index fields.
}

}  // namespace cvrepair
