#include "repair/repair_result.h"

#include <sstream>

namespace cvrepair {

std::string RepairStats::ToString() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " solver_calls=" << solver_calls
     << " cache_hits=" << cache_hits << " fresh=" << fresh_assignments
     << " changed=" << changed_cells << " cost=" << repair_cost
     << " violations=" << initial_violations;
  if (variants_enumerated > 0) {
    os << " variants=" << variants_enumerated
       << " pruned_bounds=" << variants_pruned_bounds
       << " datarepair_calls=" << datarepair_calls
       << " partition_builds=" << index_partition_builds
       << " partition_reuses=" << index_partition_reuses
       << " predicate_evals=" << index_predicate_evals
       << " code_evals=" << index_code_evals
       << " memo_hits=" << index_memo_hits
       << " bound_memo_hits=" << bound_memo_hits;
  }
  os << " time=" << elapsed_seconds << "s";
  return os.str();
}

}  // namespace cvrepair
