#include "repair/exact.h"

#include <chrono>
#include <limits>
#include <set>

namespace cvrepair {

namespace {

// Branch-and-bound resolver: any valid repair must change at least one
// cell of every outstanding violation, so branching over (cell of the
// first violation) × (replacement value) covers all valid repairs that
// assign each cell at most once. Values come from the original active
// domain plus one fresh variable, matching the library's repair semantics.
class ExactSearch {
 public:
  ExactSearch(const Relation& original, const ConstraintSet& sigma,
              const ExactRepairOptions& options)
      : original_(original), sigma_(sigma), options_(options) {
    for (AttrId a = 0; a < original.num_attributes(); ++a) {
      domains_.push_back(original.Domain(a));
    }
  }

  std::optional<Relation> Run(double* best_cost) {
    Relation work = original_;
    Dfs(&work, 0.0);
    if (exhausted_ || !best_.has_value()) return std::nullopt;
    *best_cost = best_cost_;
    return best_;
  }

 private:
  void Dfs(Relation* work, double cost) {
    if (exhausted_ || cost >= best_cost_) return;
    if (++nodes_ > options_.max_nodes) {
      exhausted_ = true;
      return;
    }
    std::vector<Violation> violations = FindViolations(*work, sigma_);
    if (violations.empty()) {
      best_ = *work;
      best_cost_ = cost;
      return;
    }
    const Violation& v = violations.front();
    for (const Cell& cell :
         ViolationCells(sigma_[v.constraint_index], v.rows)) {
      if (assigned_.count(cell)) continue;
      assigned_.insert(cell);
      Value saved = work->Get(cell);
      const Value original_value = original_.Get(cell);
      for (const Value& candidate : domains_[cell.attr]) {
        if (candidate == saved) continue;
        work->SetValue(cell, candidate);
        Dfs(work, cost + options_.cost.CellDist(cell, original_value,
                                                candidate));
      }
      // Fresh variable branch.
      work->SetValue(cell, Value::Fresh(++fresh_id_));
      Dfs(work, cost + options_.cost.CellDist(cell, original_value,
                                              Value::Fresh(fresh_id_)));
      work->SetValue(cell, saved);
      assigned_.erase(cell);
    }
  }

  const Relation& original_;
  const ConstraintSet& sigma_;
  const ExactRepairOptions& options_;
  std::vector<std::vector<Value>> domains_;
  std::set<Cell> assigned_;
  std::optional<Relation> best_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  int64_t nodes_ = 0;
  int64_t fresh_id_ = 1000000;  // distinct from algorithmic fresh ids
  bool exhausted_ = false;
};

}  // namespace

std::optional<RepairResult> ExactMinimumRepair(
    const Relation& I, const ConstraintSet& sigma,
    const ExactRepairOptions& options) {
  std::vector<Violation> violations = FindViolations(I, sigma);
  std::set<Cell> cells;
  for (const Violation& v : violations) {
    for (const Cell& c : ViolationCells(sigma[v.constraint_index], v.rows)) {
      cells.insert(c);
    }
  }
  if (static_cast<int>(cells.size()) > options.max_violation_cells) {
    return std::nullopt;
  }

  auto start = std::chrono::steady_clock::now();
  ExactSearch search(I, sigma, options);
  double best_cost = 0.0;
  std::optional<Relation> repaired = search.Run(&best_cost);
  if (!repaired) return std::nullopt;

  RepairResult result;
  result.repaired = std::move(*repaired);
  result.satisfied_constraints = sigma;
  result.stats.initial_violations = static_cast<int>(violations.size());
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = best_cost;
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
