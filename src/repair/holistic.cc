#include "repair/holistic.h"

#include <chrono>
#include <optional>

#include "dc/incremental.h"
#include "graph/conflict_hypergraph.h"
#include "relation/encoded.h"
#include "solver/components.h"
#include "solver/repair_context.h"
#include "util/trace.h"

namespace cvrepair {

RepairResult HolisticRepair(const Relation& I, const ConstraintSet& sigma,
                            const HolisticOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;
  result.satisfied_constraints = sigma;

  Relation current = I;
  int64_t fresh_counter = 1;
  bool clean = false;
  std::optional<ViolationIndex> index;
  if (options.incremental) index.emplace(I, sigma, options.use_encoded);
  // Full-scan mode keeps a coded mirror of the working copy, delta-updated
  // beside every SetValue (never rebuilt per round).
  std::optional<EncodedRelation> encoded;
  if (!options.incremental && options.use_encoded) encoded.emplace(current);
  TraceSpan repair_span("holistic/repair");
  for (int round = 0; round < options.max_rounds; ++round) {
    TraceSpan round_span("holistic/round");
    round_span.AddArg("round", round);
    std::vector<Violation> violations =
        index     ? index->CurrentViolations()
        : encoded ? FindViolations(*encoded, sigma)
                  : FindViolations(current, sigma);
    if (round == 0) {
      result.stats.initial_violations = static_cast<int>(violations.size());
    }
    if (violations.empty()) {
      clean = true;
      break;
    }
    ++result.stats.rounds;

    ConflictHypergraph g =
        ConflictHypergraph::Build(current, sigma, violations, options.cost);
    VertexCover cover = ApproximateVertexCover(g, options.cover);
    std::vector<Cell> changing = cover.Cells(g);

    // Holistic puts only the observed violations into the repair context.
    RepairContext rc =
        RepairContext::Build(current, sigma, changing, violations);
    std::vector<Component> components = DecomposeComponents(rc);

    DomainStats stats_of_round(current);
    CspSolver solver(current, stats_of_round, options.cost, &fresh_counter,
                     options.solver);
    for (const Component& comp : components) {
      ComponentSolution solution = solver.Solve(comp);
      ++result.stats.solver_calls;
      for (size_t v = 0; v < comp.cells.size(); ++v) {
        if (solution.values[v].is_fresh()) ++result.stats.fresh_assignments;
        current.SetValue(comp.cells[v], solution.values[v]);
        if (encoded) encoded->ApplyChange(comp.cells[v].row, comp.cells[v].attr);
        if (index) index->ApplyChange(comp.cells[v], solution.values[v]);
      }
    }
  }

  if (!clean) {
    // Round budget exhausted: force fresh variables onto a cover of the
    // remaining violations. fv satisfies no predicate, so this pass cannot
    // create new violations and the instance becomes clean.
    std::vector<Violation> violations =
        encoded ? FindViolations(*encoded, sigma)
                : FindViolations(current, sigma);
    if (!violations.empty()) {
      ++result.stats.rounds;
      ConflictHypergraph g =
          ConflictHypergraph::Build(current, sigma, violations, options.cost);
      VertexCover cover = ApproximateVertexCover(g, options.cover);
      for (const Cell& cell : cover.Cells(g)) {
        current.SetValue(cell, Value::Fresh(fresh_counter++));
        ++result.stats.fresh_assignments;
      }
    }
  }

  result.repaired = std::move(current);
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
