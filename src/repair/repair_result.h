#ifndef CVREPAIR_REPAIR_REPAIR_RESULT_H_
#define CVREPAIR_REPAIR_REPAIR_RESULT_H_

#include <cstdint>
#include <string>

#include "dc/constraint.h"
#include "relation/relation.h"

namespace cvrepair {

/// Execution counters shared by all repair algorithms; the
/// constraint-variation fields are only populated by CVTolerantRepair.
struct RepairStats {
  // Data-repair counters.
  int rounds = 0;            ///< repair rounds (always 1 for Vfree)
  int solver_calls = 0;      ///< component problems sent to the solver
  int cache_hits = 0;        ///< component solutions reused (Section 4.2)
  int fresh_assignments = 0; ///< cells assigned a fresh variable
  int changed_cells = 0;
  double repair_cost = 0.0;  ///< Δ(I, I') under the run's cost model
  int initial_violations = 0;
  int suspects = 0;
  /// Tuples tombstoned by the subset-repair strategy (repair/subset.h);
  /// 0 under the pure cell-update strategy.
  int rows_deleted = 0;

  // Topology-aware decomposition counters (vfree with decompose on; see
  // DESIGN.md §12). These mirror the global "solve.*" registry counters,
  // which the vfree engine increments directly — PublishRepairStats must
  // not republish them.
  int64_t components_split = 0;       ///< oversized components actually split
  int64_t stitch_merges = 0;          ///< merged re-solves of boundary regions
  int64_t giant_component_cells = 0;  ///< cells in components over the threshold

  // Constraint-variation counters (CVTolerant only).
  int variants_enumerated = 0;      ///< |D| after generation
  int variants_pruned_nonmaximal = 0;
  int variants_pruned_bounds = 0;   ///< skipped by delta_l > delta_min
  int datarepair_calls = 0;         ///< DataRepair invocations (Alg. 1 line 4)

  // Shared evaluation-index counters (CVTolerant only): per-run deltas of
  // the process-wide eval counters, so they are meaningful when one repair
  // runs at a time. With reuse_index off, partition work appears under
  // `builds` and `reuses` stays 0.
  int64_t index_partition_builds = 0;  ///< partitions built by a full scan
  int64_t index_partition_reuses = 0;  ///< answered by cache/refine/merge
  int64_t index_predicate_evals = 0;   ///< predicate evals on boxed Values
  int64_t index_code_evals = 0;        ///< predicate evals on integer codes
  int64_t index_memo_hits = 0;         ///< verdicts answered by the memo
  int64_t index_truncated_scans = 0;   ///< capped scans that hit their cap
  int64_t index_blocks_scanned = 0;    ///< zone-map consults that ran a block
  int64_t index_blocks_skipped = 0;    ///< zone-map consults that pruned one
  int64_t bound_memo_hits = 0;  ///< δ bounds reused via the facts cache

  double elapsed_seconds = 0.0;

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// Publishes a run's integer work counters into the global MetricsRegistry
/// under the "repair." prefix, so metrics.json carries the repair outcome
/// next to the "eval."/"cache." subsystem counters. The eval-index fields
/// are *not* republished (they are per-run deltas of counters the registry
/// already holds); floats (cost, time) never enter the registry. Call once
/// per finished run — the CLI and benches do, after their top-level repair.
void PublishRepairStats(const RepairStats& stats);

/// Outcome of a repair run: the repaired instance, the constraint set it
/// satisfies (for CVTolerant, the chosen variant Σ'; otherwise the input
/// Σ), and counters.
struct RepairResult {
  Relation repaired;
  ConstraintSet satisfied_constraints;
  RepairStats stats;
};

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_REPAIR_RESULT_H_
