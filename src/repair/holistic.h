#ifndef CVREPAIR_REPAIR_HOLISTIC_H_
#define CVREPAIR_REPAIR_HOLISTIC_H_

#include "dc/violation.h"
#include "graph/vertex_cover.h"
#include "repair/costs.h"
#include "repair/repair_result.h"
#include "solver/csp_solver.h"

namespace cvrepair {

/// Options for the Holistic baseline.
struct HolisticOptions {
  CostModel cost;
  CoverHeuristic cover = CoverHeuristic::kGreedyDegree;
  SolverOptions solver;
  /// After this many rounds every still-conflicting cover cell is forced
  /// to a fresh variable, guaranteeing termination with I' ⊨ Σ.
  int max_rounds = 25;
  /// Maintain violations incrementally across rounds (ViolationIndex)
  /// instead of re-detecting from scratch — same violation sets, less
  /// work per round when few cells change.
  bool incremental = false;
  /// Detect violations on the dictionary-encoded columnar backend
  /// (relation/encoded.h), delta-maintained across rounds beside the
  /// working copy. Same violation sets either way.
  bool use_encoded = true;
};

/// Holistic data repairing (Chu, Ilyas, Papotti, ICDE 2013 [8]),
/// reimplemented as the paper's baseline: each round detects the current
/// violations, selects cover cells, and assembles repair contexts from the
/// *violations only* (no suspects). Because a round's assignments can
/// introduce new violations, the algorithm loops until the instance is
/// clean — the multi-round behaviour the Vfree algorithm is designed to
/// avoid (Section 4).
RepairResult HolisticRepair(const Relation& I, const ConstraintSet& sigma,
                            const HolisticOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_HOLISTIC_H_
