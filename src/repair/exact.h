#ifndef CVREPAIR_REPAIR_EXACT_H_
#define CVREPAIR_REPAIR_EXACT_H_

#include <optional>

#include "dc/violation.h"
#include "repair/costs.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// Limits for the exact search (it is exponential by nature — the minimum
/// repair problem is NP-hard even for fixed DCs [16]).
struct ExactRepairOptions {
  CostModel cost;
  /// Give up when more than this many cells appear in violations.
  int max_violation_cells = 16;
  /// Search-node budget; exhaustion returns std::nullopt.
  int64_t max_nodes = 2000000;
};

/// Computes a true minimum-cost repair by exhaustive search over the cells
/// involved in violations: every such cell may keep its value, take any
/// active-domain value, or become a fresh variable. Only feasible for toy
/// instances; used by tests and by the Table 2 approximation-factor bench
/// to measure Δ(I, I') / Δ(I, I*) for the heuristic repairs.
///
/// Returns std::nullopt when the instance exceeds the limits. When a
/// result is returned it satisfies `sigma` and its stats.repair_cost is
/// the optimal Δ.
std::optional<RepairResult> ExactMinimumRepair(
    const Relation& I, const ConstraintSet& sigma,
    const ExactRepairOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_EXACT_H_
