#ifndef CVREPAIR_REPAIR_COSTS_H_
#define CVREPAIR_REPAIR_COSTS_H_

#include "relation/relation.h"
#include "relation/value.h"
#include "repair/cell_weights.h"

namespace cvrepair {

/// Distance/cost model for data repairs (Definition 1).
///
/// The paper's experiments use the *count* cost: dist(a, a) = 0,
/// dist(a, b) = 1 for a != b from the active domain, and
/// dist(a, fv) = fresh_cost (1.1 by default) for fresh-variable
/// assignments. A normalized absolute-difference mode for numeric cells is
/// provided for ablations.
struct CostModel {
  enum class Kind {
    kCount,
    /// |a - b| / scale for numeric pairs, count cost otherwise.
    kNumericAbs,
    /// Normalized Levenshtein distance for string pairs (the paper's
    /// edit-distance alternative [17]), count cost otherwise.
    kEditDistance,
  };

  Kind kind = Kind::kCount;
  /// Cost of assigning a fresh variable; the paper uses 1.1 so that
  /// in-domain repairs are always preferred (dist(a,b) < dist(a,fv)).
  double fresh_cost = 1.1;
  /// Scale for kNumericAbs (e.g., the attribute range).
  double numeric_scale = 1.0;

  /// Per-cell weights w(t.A) of Definition 1 (not owned; nullptr = 1).
  const CellWeights* cell_weights = nullptr;

  /// dist(original, repaired). Symmetric for concrete values.
  double Dist(const Value& original, const Value& repaired) const;

  /// w(t.A) for one cell (1 when no weights are attached).
  double CellWeight(const Cell& cell) const {
    return cell_weights == nullptr ? 1.0 : cell_weights->Get(cell);
  }

  /// w(t.A) · dist(original, repaired) — the Definition 1 summand.
  double CellDist(const Cell& cell, const Value& original,
                  const Value& repaired) const {
    return CellWeight(cell) * Dist(original, repaired);
  }

  /// The minimum positive cost of changing a cell away from `original`
  /// (the vertex weight of Section 3.2.2): the cheapest in-domain change
  /// if the attribute has an alternative value, otherwise fresh_cost.
  double MinChangeCost(bool has_domain_alternative) const {
    if (kind == Kind::kCount) return has_domain_alternative ? 1.0 : fresh_cost;
    return has_domain_alternative ? 0.0 : fresh_cost;
  }
};

/// Δ(I, I'): total repair cost between two instances with identical schema
/// and row counts (Definition 1, unit weights).
double RepairCost(const Relation& before, const Relation& after,
                  const CostModel& cost = {});

/// Number of cells whose value differs between the two instances.
int ChangedCellCount(const Relation& before, const Relation& after);

/// Levenshtein edit distance between two strings.
int EditDistance(const std::string& a, const std::string& b);

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_COSTS_H_
