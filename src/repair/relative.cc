#include "repair/relative.h"

#include <algorithm>
#include <chrono>

#include "dc/violation.h"
#include "repair/vrepair.h"

namespace cvrepair {

namespace {

// All LHS extensions of `fd` with up to `max_added` appended attributes
// (the FD itself first).
std::vector<FdView> Extensions(const Schema& schema, const FdView& fd,
                               int max_added,
                               const std::vector<AttrId>& excluded) {
  std::vector<AttrId> addable;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (a == fd.rhs || schema.is_key(a)) continue;
    if (std::find(fd.lhs.begin(), fd.lhs.end(), a) != fd.lhs.end()) continue;
    if (std::find(excluded.begin(), excluded.end(), a) != excluded.end()) {
      continue;
    }
    addable.push_back(a);
  }
  std::vector<FdView> out;
  out.push_back(fd);
  std::vector<AttrId> chosen;
  auto dfs = [&](auto&& self, size_t from) -> void {
    if (static_cast<int>(chosen.size()) >= max_added) return;
    for (size_t i = from; i < addable.size(); ++i) {
      chosen.push_back(addable[i]);
      FdView ext = fd;
      ext.lhs.insert(ext.lhs.end(), chosen.begin(), chosen.end());
      out.push_back(std::move(ext));
      self(self, i + 1);
      chosen.pop_back();
    }
  };
  dfs(dfs, 0);
  return out;
}

}  // namespace

RepairResult RelativeRepair(const Relation& I, const ConstraintSet& sigma,
                            const RelativeOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;

  std::optional<std::vector<FdView>> fds = AsFdSet(sigma);
  if (!fds) {
    result.repaired = I;
    result.satisfied_constraints = sigma;
    return result;
  }
  result.stats.initial_violations =
      static_cast<int>(FindViolations(I, sigma).size());

  double tau = options.tau;
  if (tau < 0) {
    tau = 0.05 * static_cast<double>(I.num_rows()) * I.num_attributes();
  }

  const Schema& schema = I.schema();
  std::vector<std::vector<FdView>> per_fd;
  for (const FdView& fd : *fds) {
    per_fd.push_back(Extensions(schema, fd, options.max_added_attrs,
                                options.excluded_attrs));
  }

  // Exhaustive cross product of candidate constraint repairs. For every
  // candidate the *full* minimum data repair is evaluated (majority merge
  // over the whole candidate set) — the fixed-τ, no-shared-state search
  // that dominates Relative's running time.
  std::vector<FdView> best_set;
  int best_added = std::numeric_limits<int>::max();
  double best_cost = std::numeric_limits<double>::infinity();
  bool best_within_tau = false;
  int evaluated = 0;

  std::vector<const FdView*> pick(per_fd.size());
  auto evaluate = [&]() {
    ++evaluated;
    ++result.stats.datarepair_calls;
    std::vector<FdView> candidate;
    int added = 0;
    for (size_t i = 0; i < per_fd.size(); ++i) {
      candidate.push_back(*pick[i]);
      added += static_cast<int>(pick[i]->lhs.size() - (*fds)[i].lhs.size());
    }
    int changed = 0;
    FdMajorityRepair(I, candidate, /*passes=*/2, &changed);
    double cost = changed;
    bool within = cost <= tau;
    // Relative prefers the smallest constraint change whose repair fits
    // the trust threshold; data cost breaks ties.
    bool better;
    if (within != best_within_tau) {
      better = within;
    } else if (added != best_added) {
      better = added < best_added;
    } else {
      better = cost < best_cost;
    }
    if (better) {
      best_within_tau = within;
      best_added = added;
      best_cost = cost;
      best_set = std::move(candidate);
    }
  };
  // Minimal-constraint-change-first enumeration: all-identity, then every
  // single-FD extension, then every two-FD extension combination. This
  // matches Relative's preference order, so the candidate cap never
  // starves the candidates it would pick anyway.
  for (size_t i = 0; i < per_fd.size(); ++i) pick[i] = &per_fd[i][0];
  evaluate();
  for (size_t i = 0; i < per_fd.size() && evaluated < options.max_candidates;
       ++i) {
    for (size_t e = 1; e < per_fd[i].size(); ++e) {
      pick[i] = &per_fd[i][e];
      evaluate();
      if (evaluated >= options.max_candidates) break;
    }
    pick[i] = &per_fd[i][0];
  }
  for (size_t i = 0; i < per_fd.size() && evaluated < options.max_candidates;
       ++i) {
    for (size_t j = i + 1;
         j < per_fd.size() && evaluated < options.max_candidates; ++j) {
      for (size_t e = 1; e < per_fd[i].size(); ++e) {
        for (size_t f = 1; f < per_fd[j].size(); ++f) {
          pick[i] = &per_fd[i][e];
          pick[j] = &per_fd[j][f];
          evaluate();
          if (evaluated >= options.max_candidates) break;
        }
        if (evaluated >= options.max_candidates) break;
      }
      pick[i] = &per_fd[i][0];
      pick[j] = &per_fd[j][0];
    }
  }

  // Apply the winning candidate.
  Relation repaired = FdMajorityRepair(I, best_set, /*passes=*/3, nullptr);
  ConstraintSet final_set;
  for (const FdView& fd : best_set) {
    final_set.push_back(DenialConstraint::FromFd(fd.lhs, fd.rhs));
  }
  std::vector<Violation> remaining = FindViolations(repaired, final_set);
  int64_t fresh = 1;
  for (const Violation& v : remaining) {
    const FdView& fd = best_set[v.constraint_index];
    for (int row : v.rows) {
      if (!repaired.Get(row, fd.rhs).is_fresh()) {
        repaired.SetValue(row, fd.rhs, Value::Fresh(fresh++));
        ++result.stats.fresh_assignments;
      }
    }
  }

  result.repaired = std::move(repaired);
  result.satisfied_constraints = std::move(final_set);
  result.stats.rounds = 1;
  result.stats.variants_enumerated = evaluated;
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
