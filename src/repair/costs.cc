#include "repair/costs.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

namespace cvrepair {

double CostModel::Dist(const Value& original, const Value& repaired) const {
  if (original == repaired) return 0.0;
  if (repaired.is_fresh() || original.is_fresh()) return fresh_cost;
  if (kind == Kind::kNumericAbs && original.is_numeric() &&
      repaired.is_numeric()) {
    double scale = numeric_scale > 0 ? numeric_scale : 1.0;
    return std::abs(original.numeric() - repaired.numeric()) / scale;
  }
  if (kind == Kind::kEditDistance &&
      original.kind() == ValueKind::kString &&
      repaired.kind() == ValueKind::kString) {
    const std::string& a = original.as_string();
    const std::string& b = repaired.as_string();
    size_t longest = std::max(a.size(), b.size());
    if (longest == 0) return 0.0;
    return static_cast<double>(EditDistance(a, b)) / longest;
  }
  return 1.0;
}

int EditDistance(const std::string& a, const std::string& b) {
  std::vector<int> prev(b.size() + 1);
  std::vector<int> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double RepairCost(const Relation& before, const Relation& after,
                  const CostModel& cost) {
  assert(before.num_rows() == after.num_rows());
  assert(before.num_attributes() == after.num_attributes());
  double total = 0.0;
  for (int i = 0; i < before.num_rows(); ++i) {
    for (AttrId a = 0; a < before.num_attributes(); ++a) {
      total += cost.CellDist({i, a}, before.Get(i, a), after.Get(i, a));
    }
  }
  return total;
}

int ChangedCellCount(const Relation& before, const Relation& after) {
  assert(before.num_rows() == after.num_rows());
  int count = 0;
  for (int i = 0; i < before.num_rows(); ++i) {
    for (AttrId a = 0; a < before.num_attributes(); ++a) {
      if (!(before.Get(i, a) == after.Get(i, a))) ++count;
    }
  }
  return count;
}

}  // namespace cvrepair
