#ifndef CVREPAIR_REPAIR_GREEDY_H_
#define CVREPAIR_REPAIR_GREEDY_H_

#include "repair/costs.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// Options for the Greedy DC baseline.
struct GreedyOptions {
  CostModel cost;
  /// A cell re-picked this many times is forced to a fresh variable
  /// (guarantees termination).
  int max_touches_per_cell = 2;
  int max_iterations = 200000;
  /// Detect violations on the dictionary-encoded columnar backend
  /// (relation/encoded.h), delta-maintained beside the working copy.
  /// Same violation sets either way.
  bool use_encoded = true;
};

/// Greedy repair for denial constraints (Lopatenko & Bravo, ICDE 2007
/// [16]): repeatedly pick the cell involved in the largest number of
/// current violations, assign it the active-domain value that resolves
/// the most of *its* violations (ties broken by proximity for numeric
/// attributes, frequency otherwise), and recompute. Cells that keep
/// conflicting are escalated to fresh variables, so the output satisfies
/// the constraints.
RepairResult GreedyRepair(const Relation& I, const ConstraintSet& sigma,
                          const GreedyOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_GREEDY_H_
