#include "repair/cell_weights.h"

#include <algorithm>

#include "relation/domain_stats.h"

namespace cvrepair {

CellWeights CellWeights::FromValueFrequencies(const Relation& I, double base,
                                              double scale) {
  CellWeights weights;
  DomainStats stats(I);
  for (AttrId a = 0; a < I.num_attributes(); ++a) {
    const AttrStats& s = stats.attr(a);
    int max_freq = s.frequencies.empty() ? 1 : s.frequencies[0].second;
    for (int i = 0; i < I.num_rows(); ++i) {
      const Value& v = I.Get(i, a);
      if (v.is_null() || v.is_fresh()) continue;
      double freq = stats.Frequency(a, v);
      weights.Set(i, a, base + scale * freq / std::max(max_freq, 1));
    }
  }
  return weights;
}

}  // namespace cvrepair
