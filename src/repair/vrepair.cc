#include "repair/vrepair.h"

#include <chrono>
#include <unordered_map>

#include "dc/violation.h"

namespace cvrepair {

std::optional<FdView> AsFd(const DenialConstraint& constraint) {
  FdView fd;
  int neq_count = 0;
  for (const Predicate& p : constraint.predicates()) {
    if (!p.IsSameAttributeAcrossTuples()) return std::nullopt;
    if (p.op() == Op::kEq) {
      fd.lhs.push_back(p.lhs().attr);
    } else if (p.op() == Op::kNeq) {
      fd.rhs = p.lhs().attr;
      ++neq_count;
    } else {
      return std::nullopt;
    }
  }
  if (neq_count != 1 || fd.lhs.empty()) return std::nullopt;
  return fd;
}

std::optional<std::vector<FdView>> AsFdSet(const ConstraintSet& sigma) {
  std::vector<FdView> fds;
  for (const DenialConstraint& c : sigma) {
    std::optional<FdView> fd = AsFd(c);
    if (!fd) return std::nullopt;
    fds.push_back(std::move(*fd));
  }
  return fds;
}

namespace {

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0x9131;
    for (const Value& v : vs) seed = seed * 1000003 ^ v.Hash();
    return seed;
  }
};

}  // namespace

Relation FdMajorityRepair(const Relation& I, const std::vector<FdView>& fds,
                          int passes, int* changed) {
  Relation current = I;
  int modified = 0;
  for (int pass = 0; pass < passes; ++pass) {
    bool any = false;
    for (const FdView& fd : fds) {
      // Group rows by LHS values (rows with NULL/fv on the LHS never
      // violate, so they are left alone).
      std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
          classes;
      for (int i = 0; i < current.num_rows(); ++i) {
        std::vector<Value> key;
        key.reserve(fd.lhs.size());
        bool usable = true;
        for (AttrId a : fd.lhs) {
          const Value& v = current.Get(i, a);
          if (v.is_null() || v.is_fresh()) {
            usable = false;
            break;
          }
          key.push_back(v);
        }
        if (usable) classes[std::move(key)].push_back(i);
      }
      for (const auto& [key, members] : classes) {
        (void)key;
        if (members.size() < 2) continue;
        // Weighted majority over the class's RHS values.
        std::unordered_map<Value, int, ValueHash> counts;
        for (int i : members) {
          const Value& v = current.Get(i, fd.rhs);
          if (!v.is_null() && !v.is_fresh()) ++counts[v];
        }
        if (counts.size() <= 1) continue;
        Value majority;
        int best = -1;
        for (const auto& [v, n] : counts) {
          if (n > best || (n == best && v < majority)) {
            best = n;
            majority = v;
          }
        }
        for (int i : members) {
          const Value& v = current.Get(i, fd.rhs);
          if (!v.is_null() && !v.is_fresh() && !(v == majority)) {
            current.SetValue(i, fd.rhs, majority);
            ++modified;
            any = true;
          }
        }
      }
    }
    if (!any) break;
  }
  if (changed) *changed = modified;
  return current;
}

RepairResult VrepairRepair(const Relation& I, const ConstraintSet& sigma,
                           const VrepairOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;
  result.satisfied_constraints = sigma;

  std::optional<std::vector<FdView>> fds = AsFdSet(sigma);
  if (!fds) {
    // Not an FD set: hand back the input unchanged (callers check the
    // constraint shape; this keeps the API total).
    result.repaired = I;
    return result;
  }
  result.stats.initial_violations =
      static_cast<int>(FindViolations(I, sigma).size());

  Relation repaired = FdMajorityRepair(I, *fds, options.passes, nullptr);
  result.stats.rounds = options.passes;

  // Any class still mixed after the passes is settled with fresh
  // variables so the output always satisfies sigma.
  std::vector<Violation> remaining = FindViolations(repaired, sigma);
  int64_t fresh = 1;
  for (const Violation& v : remaining) {
    const FdView& fd = (*fds)[v.constraint_index];
    for (int row : v.rows) {
      const Value& val = repaired.Get(row, fd.rhs);
      if (!val.is_fresh()) {
        repaired.SetValue(row, fd.rhs, Value::Fresh(fresh++));
        ++result.stats.fresh_assignments;
      }
    }
  }

  result.repaired = std::move(repaired);
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
