#include "repair/unified.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "dc/violation.h"
#include "repair/vrepair.h"

namespace cvrepair {

namespace {

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0x715a;
    for (const Value& v : vs) seed = seed * 1000003 ^ v.Hash();
    return seed;
  }
};

// Number of minority RHS cells across the equivalence classes of fd —
// the data-repair price of making I satisfy fd by majority merge.
int MinorityCells(const Relation& I, const FdView& fd) {
  std::unordered_map<std::vector<Value>, std::unordered_map<Value, int, ValueHash>,
                     ValueVecHash>
      classes;
  for (int i = 0; i < I.num_rows(); ++i) {
    std::vector<Value> key;
    bool usable = true;
    for (AttrId a : fd.lhs) {
      const Value& v = I.Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (!usable) continue;
    const Value& rhs = I.Get(i, fd.rhs);
    if (rhs.is_null() || rhs.is_fresh()) continue;
    ++classes[std::move(key)][rhs];
  }
  int cost = 0;
  for (const auto& [key, counts] : classes) {
    (void)key;
    int total = 0;
    int max_count = 0;
    for (const auto& [v, n] : counts) {
      (void)v;
      total += n;
      max_count = std::max(max_count, n);
    }
    cost += total - max_count;
  }
  return cost;
}

}  // namespace

RepairResult UnifiedRepair(const Relation& I, const ConstraintSet& sigma,
                           const UnifiedOptions& options) {
  auto start = std::chrono::steady_clock::now();
  RepairResult result;

  std::optional<std::vector<FdView>> fds = AsFdSet(sigma);
  if (!fds) {
    result.repaired = I;
    result.satisfied_constraints = sigma;
    return result;
  }
  result.stats.initial_violations =
      static_cast<int>(FindViolations(I, sigma).size());

  Relation current = I;
  std::vector<FdView> adopted;
  const Schema& schema = I.schema();
  for (FdView fd : *fds) {
    // Alternative (a): repair the data under the FD as-is.
    int data_cost = MinorityCells(current, fd);

    // Alternative (b): repair the constraint by appending LHS attributes
    // (insertion only — the Unified model never deletes), then repair the
    // residual data.
    FdView best_fd = fd;
    double best_constraint_cost = std::numeric_limits<double>::infinity();
    for (int added = 0; added < options.max_added_attrs; ++added) {
      FdView extended = best_fd;
      double best_local = std::numeric_limits<double>::infinity();
      FdView best_ext = extended;
      for (AttrId b = 0; b < schema.num_attributes(); ++b) {
        if (b == fd.rhs || schema.is_key(b)) continue;
        if (std::find(options.excluded_attrs.begin(),
                      options.excluded_attrs.end(),
                      b) != options.excluded_attrs.end()) {
          continue;
        }
        if (std::find(extended.lhs.begin(), extended.lhs.end(), b) !=
            extended.lhs.end()) {
          continue;
        }
        FdView candidate = extended;
        candidate.lhs.push_back(b);
        double dl =
            options.constraint_repair_weight *
                static_cast<double>(candidate.lhs.size() + 1) +
            MinorityCells(current, candidate);
        if (dl < best_local) {
          best_local = dl;
          best_ext = std::move(candidate);
        }
      }
      if (best_local < best_constraint_cost) {
        best_constraint_cost = best_local;
        best_fd = best_ext;
      } else {
        break;
      }
    }

    if (static_cast<double>(data_cost) <= best_constraint_cost) {
      // Data repair wins: keep the FD, merge classes by majority.
      adopted.push_back(fd);
      int changed = 0;
      current = FdMajorityRepair(current, {fd}, /*passes=*/1, &changed);
    } else {
      // Constraint repair wins: adopt the refined FD, then settle the
      // (much smaller) residue by majority.
      adopted.push_back(best_fd);
      int changed = 0;
      current = FdMajorityRepair(current, {best_fd}, /*passes=*/1, &changed);
    }
  }

  ConstraintSet final_set;
  for (const FdView& fd : adopted) {
    final_set.push_back(DenialConstraint::FromFd(fd.lhs, fd.rhs));
  }
  // Settle any cross-FD interactions and force fresh variables on classes
  // that still disagree.
  current = FdMajorityRepair(current, adopted, /*passes=*/2, nullptr);
  std::vector<Violation> remaining = FindViolations(current, final_set);
  int64_t fresh = 1;
  for (const Violation& v : remaining) {
    const FdView& fd = adopted[v.constraint_index];
    for (int row : v.rows) {
      if (!current.Get(row, fd.rhs).is_fresh()) {
        current.SetValue(row, fd.rhs, Value::Fresh(fresh++));
        ++result.stats.fresh_assignments;
      }
    }
  }

  result.repaired = std::move(current);
  result.satisfied_constraints = std::move(final_set);
  result.stats.rounds = 1;
  result.stats.changed_cells = ChangedCellCount(I, result.repaired);
  result.stats.repair_cost = RepairCost(I, result.repaired, options.cost);
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace cvrepair
