#ifndef CVREPAIR_REPAIR_STREAMING_H_
#define CVREPAIR_REPAIR_STREAMING_H_

// Streaming batch repair (DESIGN.md §9): one whole-instance θ-tolerant
// repair up front freezes the constraint variant Σ'; afterwards batches of
// tuple edits are ingested against a delta-maintained ViolationIndex, the
// dirty conflict components are localized, and only those components are
// re-solved. After every batch the held instance is violation-free under
// Σ' and bit-identical in cost to a from-scratch component repair of the
// accumulated instance, at any thread count.

#include <cstdint>
#include <memory>
#include <vector>

#include "dc/incremental.h"
#include "repair/cvtolerant.h"
#include "solver/materialized_cache.h"

namespace cvrepair {

/// Options of a StreamingRepairer.
struct StreamingOptions {
  /// Configuration of the initial whole-instance repair (which chooses the
  /// frozen variant) and of every per-batch component re-solve — threads,
  /// cost model, encoded backend, solver budgets all come from here.
  CVTolerantOptions repair;
  /// Reuse materialized component solutions across batches, not just
  /// within one. Off by default: a cross-batch hit can return a different
  /// — equally valid, by Proposition 6 — solution than a cold solve under
  /// the heuristic CSP solver, which would break the bit-identical-to-
  /// scratch contract the tests pin. On = more reuse, still violation-free
  /// after every batch.
  bool cross_batch_cache = false;
};

/// Outcome of one ApplyBatch call.
struct StreamBatchResult {
  int edits = 0;         ///< RowEdits in the batch
  int rows_touched = 0;  ///< distinct rows the edits touched
  int violations = 0;    ///< delta-detected violations after the edits
  int dirty_rows = 0;    ///< touched rows ∪ rows sharing a violation
  int components = 0;    ///< dirty components re-solved
  int cells_changed = 0; ///< cells whose stored value actually changed
  /// Row re-scans this batch (detection + repair application) — the work
  /// that scales with the batch, not with the accumulated instance.
  int64_t rows_rechecked = 0;
  double repair_cost = 0.0;  ///< summed cost of this batch's fixes
  double elapsed_seconds = 0.0;
};

/// Cumulative counters over a stream; mirrored into the global
/// MetricsRegistry under the "stream." prefix (work counters, CI-gated).
struct StreamTotals {
  int64_t batches = 0;
  int64_t edits = 0;
  int64_t rows_ingested = 0;        ///< distinct touched rows, summed
  int64_t rows_rechecked = 0;
  int64_t components_resolved = 0;
  int64_t cells_changed = 0;
};

/// Owns a repaired instance and its delta-maintained violation state, and
/// keeps it violation-free under a frozen variant as batches of edits
/// stream in. Construction runs the full CVTolerantRepair on (I, Σ) —
/// thereafter the variant is frozen and ApplyBatch only re-solves dirty
/// components. All engine knobs (threads, encoded backend, cost model)
/// come from StreamingOptions::repair.
class StreamingRepairer {
 public:
  StreamingRepairer(const Relation& I, const ConstraintSet& sigma,
                    const StreamingOptions& options = {});

  /// The maintained instance: violation-free under variant() after
  /// construction and after every ApplyBatch.
  const Relation& current() const { return index_->relation(); }
  /// The frozen variant Σ' chosen by the initial repair.
  const ConstraintSet& variant() const { return variant_; }
  /// Stats of the initial whole-instance repair.
  const RepairStats& initial_stats() const { return initial_stats_; }
  const StreamTotals& totals() const { return totals_; }
  /// True iff the current instance satisfies the frozen variant — the
  /// invariant ApplyBatch re-establishes after every batch.
  bool IsViolationFree() const { return !index_->HasViolations(); }

  /// Ingests one batch: applies the edits through the ViolationIndex
  /// (delta-detecting new violations for touched rows only), localizes the
  /// dirty components, re-solves them under the frozen variant, and writes
  /// the fixes back. The result is bit-identical in cost — and identical
  /// cell-for-cell modulo fresh-variable ids — to SolveDirtyComponents run
  /// from scratch on the accumulated instance, at any thread count.
  StreamBatchResult ApplyBatch(const std::vector<RowEdit>& edits);

 private:
  StreamingOptions options_;
  ConstraintSet variant_;
  RepairStats initial_stats_;
  std::unique_ptr<ViolationIndex> index_;
  MaterializedCache cross_batch_cache_;  // used only when enabled
  int64_t fresh_counter_ = 1;  // continues past the initial repair's ids
  StreamTotals totals_;
};

/// A deterministic replay workload for the streaming drivers (the CLI's
/// --stream-batches mode, bench/micro_stream_repair, tests): holds out a
/// tail of `dirty`'s rows and replays them as inserts, interleaved with
/// update edits that copy another tuple's value into a random cell (the
/// same typo-style noise the synthetic generators plant).
struct ReplayWorkload {
  Relation base;  ///< the prefix the StreamingRepairer starts from
  std::vector<std::vector<RowEdit>> batches;
};

/// Splits `dirty` into a ReplayWorkload of `num_batches` batches of
/// `batch_size` edits each. At most half the edits (and a quarter of the
/// rows) are insert replays, spread evenly over the stream; the rest are
/// updates of rows live at apply time. Deterministic in (dirty, shape,
/// seed).
ReplayWorkload MakeReplayWorkload(const Relation& dirty, int num_batches,
                                  int batch_size, uint64_t seed = 42);

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_STREAMING_H_
