#ifndef CVREPAIR_REPAIR_STREAMING_H_
#define CVREPAIR_REPAIR_STREAMING_H_

// Streaming batch repair (DESIGN.md §9, §11): one whole-instance θ-tolerant
// repair up front chooses the constraint variant Σ'; afterwards batches of
// tuple edits are ingested against a delta-maintained ViolationIndex, the
// dirty conflict components are localized, and only those components are
// re-solved. After every batch the held instance is violation-free under
// Σ' and bit-identical in cost to a from-scratch component repair of the
// accumulated instance, at any thread count.
//
// By default Σ' stays frozen. With `reopen_variants` a VariantTracker
// delta-maintains per-variant δ_l/δ_u repair-cost bounds over the
// accumulated *dirty* instance and re-opens the variant search (the same
// Algorithm 1 candidate loop, factored as CVTolerantSearchWithFacts) only
// when some rival's lower bound reaches the incumbent's realized cost —
// so a drifting stream recovers the scratch-optimal variant without
// re-evaluating every variant every batch.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dc/incremental.h"
#include "repair/cvtolerant.h"
#include "solver/materialized_cache.h"

namespace cvrepair {

/// Options of a StreamingRepairer.
struct StreamingOptions {
  /// Configuration of the initial whole-instance repair (which chooses the
  /// variant) and of every per-batch component re-solve — threads, cost
  /// model, encoded backend, solver budgets all come from here.
  CVTolerantOptions repair;
  /// Reuse materialized component solutions across batches, not just
  /// within one. On by default: the cache keeps epoch stamps
  /// (MaterializedCache::BeginEpoch) and the repairer evicts every entry
  /// whose rows or attributes a batch's edits, fixes, or inserts touched,
  /// so a surviving cross-batch hit reproduces exactly the solution a cold
  /// per-batch solve would compute — results stay bit-identical to
  /// cross_batch_cache = off (the streaming tests pin this). Off = the
  /// cold per-batch caches of PR 5, for A/B runs.
  bool cross_batch_cache = true;
  /// Unfreeze Σ': track per-variant cost bounds across batches and re-open
  /// the variant search when a rival's lower bound reaches the incumbent's
  /// realized cost. Off by default (frozen incumbent, PR 5 behaviour).
  bool reopen_variants = false;
  /// Slack for the reopen trigger and the switch decision.
  double reopen_margin = 1e-9;
};

/// Outcome of one ApplyBatch call.
struct StreamBatchResult {
  int edits = 0;         ///< RowEdits in the batch
  int rows_touched = 0;  ///< distinct rows the edits touched
  int violations = 0;    ///< delta-detected violations after the edits
  int dirty_rows = 0;    ///< touched rows ∪ rows sharing a violation
  int components = 0;    ///< dirty components re-solved
  int cells_changed = 0; ///< cells whose stored value actually changed
  /// Row re-scans this batch (detection + repair application) — the work
  /// that scales with the batch, not with the accumulated instance.
  int64_t rows_rechecked = 0;
  double repair_cost = 0.0;  ///< summed cost of this batch's fixes
  // Variant tracking (reopen_variants only).
  bool reopened = false;          ///< the variant search ran this batch
  bool variant_switched = false;  ///< ... and adopted a different Σ'
  int bound_updates = 0;          ///< per-constraint δ bound recomputations
  double realized_cost = 0.0;     ///< Δ(dirty, current) after the batch
  double rival_bound = 0.0;       ///< best rival lower bound after the batch
  /// Cross-batch cache entries dropped this batch (staleness eviction plus
  /// any variant-switch sweep).
  int64_t cache_invalidations = 0;
  double elapsed_seconds = 0.0;
};

/// Cumulative counters over a stream; mirrored into the global
/// MetricsRegistry under the "stream." prefix (work counters, CI-gated).
struct StreamTotals {
  int64_t batches = 0;
  int64_t edits = 0;
  int64_t rows_ingested = 0;        ///< distinct touched rows, summed
  int64_t rows_rechecked = 0;
  int64_t components_resolved = 0;
  int64_t cells_changed = 0;
  int64_t variant_reopens = 0;      ///< variant searches re-run mid-stream
  int64_t variant_switches = 0;     ///< ... that adopted a different Σ'
  int64_t bound_updates = 0;        ///< per-constraint δ bound recomputations
  int64_t cache_invalidations = 0;  ///< cross-batch cache entries dropped
};

/// Delta-maintained per-variant repair-cost bounds over the accumulated
/// dirty instance (DESIGN.md §11). Owns a copy of the dirty instance D —
/// the stream's edits *before* any repair — plus one ViolationIndex over
/// the family of distinct constraints across Σ and every enumerated
/// variant. Ingest mirrors each batch into D and recomputes δ_l/δ_u facts
/// for exactly the constraints whose violation set changed (the per-batch
/// work counter behind stream.bound_updates); the facts feed
/// CVTolerantSearchWithFacts, and BestRivalBound answers the reopen
/// trigger. Facts are structurally identical to what ScanVariantFacts
/// computes from scratch on D — the drift tests pin this.
class VariantTracker {
 public:
  /// Enumerates the variant family of (Σ, dirty) once — the family is
  /// fixed for the stream's lifetime — and builds the facts of every
  /// distinct constraint.
  VariantTracker(const Relation& dirty, const ConstraintSet& sigma,
                 const CVTolerantOptions& options);

  /// Mirrors one batch of raw edits into the dirty instance and refreshes
  /// the facts of every constraint whose violations changed (solved-cost
  /// records of variants containing such a constraint are invalidated).
  /// Returns the number of per-constraint bound recomputations.
  int Ingest(const std::vector<RowEdit>& edits);

  /// Records the outcomes of a search's candidates: a solved variant's
  /// lower bound is lifted from δ_l to its realized cost, and an aborted
  /// one's to the δ_min threshold its cost provably exceeds — in both
  /// cases until one of the variant's constraints' facts change again.
  void RecordSearch(const VariantSearchResult& result);

  /// min over variants other than `incumbent` of that variant's lower
  /// bound: max(δ_l, recorded solved cost); +inf for hopeless variants and
  /// when no rival exists.
  double BestRivalBound(const ConstraintSet& incumbent) const;

  /// The accumulated dirty instance D.
  const Relation& dirty() const { return index_->relation(); }
  /// Coded mirror of D (nullptr with the encoded backend off).
  const EncodedRelation* encoded() const { return index_->encoded(); }
  const ConstraintSet& sigma() const { return sigma_; }
  const std::vector<SigmaVariant>& variants() const { return variants_; }
  const VariantFacts& FactsOf(const DenialConstraint& c) const {
    return facts_[family_pos_.at(c)];
  }
  /// Facts provider bound to this tracker, for CVTolerantSearchWithFacts.
  VariantFactsFn FactsFn() const {
    return [this](const DenialConstraint& c) -> const VariantFacts& {
      return FactsOf(c);
    };
  }

 private:
  void RefreshFacts(size_t k);
  int64_t ViolationCap() const;

  ConstraintSet sigma_;
  CVTolerantOptions options_;
  std::vector<SigmaVariant> variants_;
  ConstraintSet family_;  // distinct constraints, first-seen order
  std::map<DenialConstraint, size_t> family_pos_;
  std::unique_ptr<ViolationIndex> index_;  // over (D, family_)
  std::vector<VariantFacts> facts_;        // per family position
  std::vector<int64_t> seen_epochs_;       // ViolationEpochOf at last refresh
  std::vector<int64_t> changed_gen_;       // generation of last facts change
  std::vector<std::vector<size_t>> members_;  // variant -> family positions
  std::vector<double> solved_costs_;          // per variant (NaN = none)
  std::vector<int64_t> solved_gen_;           // generation when solved
  std::vector<double> abort_bounds_;          // per variant (NaN = none)
  std::vector<int64_t> abort_gen_;            // generation when aborted
  int64_t generation_ = 0;
};

/// Owns a repaired instance and its delta-maintained violation state, and
/// keeps it violation-free under the current variant as batches of edits
/// stream in. Construction runs the full variant search on (I, Σ);
/// afterwards ApplyBatch re-solves dirty components under the incumbent
/// and — with reopen_variants — re-runs the variant search whenever a
/// rival's maintained lower bound reaches the incumbent's realized cost.
/// All engine knobs (threads, encoded backend, cost model) come from
/// StreamingOptions::repair.
class StreamingRepairer {
 public:
  StreamingRepairer(const Relation& I, const ConstraintSet& sigma,
                    const StreamingOptions& options = {});

  /// The maintained instance: violation-free under variant() after
  /// construction and after every ApplyBatch.
  const Relation& current() const { return index_->relation(); }
  /// The current variant Σ' (frozen unless reopen_variants).
  const ConstraintSet& variant() const { return variant_; }
  /// Stats of the initial whole-instance repair.
  const RepairStats& initial_stats() const { return initial_stats_; }
  const StreamTotals& totals() const { return totals_; }
  /// The bound tracker, or nullptr unless reopen_variants.
  const VariantTracker* tracker() const { return tracker_.get(); }
  /// Δ(dirty, current) under the run's cost model (reopen_variants only).
  double realized_cost() const { return realized_cost_; }
  /// True iff the current instance satisfies the current variant — the
  /// invariant ApplyBatch re-establishes after every batch.
  bool IsViolationFree() const { return !index_->HasViolations(); }

  /// Ingests one batch: applies the edits through the ViolationIndex
  /// (delta-detecting new violations for touched rows only), localizes the
  /// dirty components, re-solves them under the current variant, and
  /// writes the fixes back. The result is bit-identical in cost — and
  /// identical cell-for-cell modulo fresh-variable ids — to
  /// SolveDirtyComponents run from scratch on the accumulated instance, at
  /// any thread count. With reopen_variants, finishes by updating the
  /// tracker's bounds and re-opening the variant search when a rival's
  /// lower bound reaches the incumbent's realized cost.
  StreamBatchResult ApplyBatch(const std::vector<RowEdit>& edits);

 private:
  void EvictForEdits(const std::vector<RowEdit>& edits,
                     StreamBatchResult* out);
  void MaybeReopen(StreamBatchResult* out);

  StreamingOptions options_;
  ConstraintSet variant_;
  RepairStats initial_stats_;
  std::unique_ptr<ViolationIndex> index_;
  std::unique_ptr<VariantTracker> tracker_;  // reopen_variants only
  double realized_cost_ = 0.0;               // Δ(dirty, current)
  MaterializedCache cross_batch_cache_;  // used only when enabled
  int64_t fresh_counter_ = 1;  // continues past the initial repair's ids
  StreamTotals totals_;
};

/// A deterministic replay workload for the streaming drivers (the CLI's
/// --stream-batches mode, bench/micro_stream_repair, tests): holds out a
/// tail of `dirty`'s rows and replays them as inserts, interleaved with
/// update edits that copy another tuple's value into a random cell (the
/// same typo-style noise the synthetic generators plant).
struct ReplayWorkload {
  Relation base;  ///< the prefix the StreamingRepairer starts from
  std::vector<std::vector<RowEdit>> batches;
};

/// Splits `dirty` into a ReplayWorkload of `num_batches` batches of
/// `batch_size` edits each. At most half the edits (and a quarter of the
/// rows) are insert replays, spread evenly over the stream; the rest are
/// updates of rows live at apply time. Deterministic in (dirty, shape,
/// seed).
ReplayWorkload MakeReplayWorkload(const Relation& dirty, int num_batches,
                                  int batch_size, uint64_t seed = 42);

/// A drifting variation of MakeReplayWorkload for the variant-drift bench
/// and tests: update edits draw their source values from a sliding window
/// of `dirty`'s rows that moves from the head of the relation to its tail
/// as the stream progresses, so per-attribute value frequencies — and with
/// them the Eq. 2 weighted variation costs and the per-variant repair
/// bounds — skew over time instead of staying stationary.
ReplayWorkload MakeDriftWorkload(const Relation& dirty, int num_batches,
                                 int batch_size, uint64_t seed = 42);

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_STREAMING_H_
