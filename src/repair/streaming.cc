#include "repair/streaming.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <set>
#include <utility>

#include "graph/bounds.h"
#include "graph/conflict_hypergraph.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

/// Cached "stream." counter handles (handles are stable for the process
/// lifetime; ResetAll only zeroes values).
struct StreamCounters {
  MetricCounter* batches;
  MetricCounter* edits;
  MetricCounter* rows_ingested;
  MetricCounter* rows_rechecked;
  MetricCounter* components_resolved;
  MetricCounter* cells_changed;
  MetricCounter* variant_reopens;
  MetricCounter* bound_updates;
  MetricCounter* cache_invalidations;

  static const StreamCounters& Get() {
    static StreamCounters c = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      StreamCounters out;
      out.batches = r.GetCounter("stream.batches");
      out.edits = r.GetCounter("stream.edits");
      out.rows_ingested = r.GetCounter("stream.rows_ingested");
      out.rows_rechecked = r.GetCounter("stream.rows_rechecked");
      out.components_resolved = r.GetCounter("stream.components_resolved");
      out.cells_changed = r.GetCounter("stream.cells_changed");
      out.variant_reopens = r.GetCounter("stream.variant_reopens");
      out.bound_updates = r.GetCounter("stream.bound_updates");
      out.cache_invalidations = r.GetCounter("stream.cache_invalidations");
      return out;
    }();
    return c;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// VariantTracker

VariantTracker::VariantTracker(const Relation& dirty,
                               const ConstraintSet& sigma,
                               const CVTolerantOptions& options)
    : sigma_(sigma), options_(options) {
  TraceSpan span("stream/variant_tracker_build");
  // Variant enumeration mirrors CVTolerantRepair exactly; the family is
  // enumerated once, against the stream's starting dirty instance, and
  // stays fixed for the tracker's lifetime.
  VariantGenOptions gen = options_.variants;
  gen.always_include_original =
      gen.always_include_original && gen.theta >= 0.0;
  if (gen.data == nullptr) gen.data = &dirty;
  variants_ = GenerateSigmaVariants(sigma_, dirty.schema(), gen);
  span.AddArg("variants", static_cast<int64_t>(variants_.size()));

  auto enqueue = [&](const DenialConstraint& c) {
    auto [it, inserted] = family_pos_.try_emplace(c, family_.size());
    if (inserted) family_.push_back(c);
    return it->second;
  };
  for (const DenialConstraint& phi : sigma_) enqueue(phi);
  members_.resize(variants_.size());
  for (size_t vi = 0; vi < variants_.size(); ++vi) {
    for (const DenialConstraint& phi : variants_[vi].constraints) {
      members_[vi].push_back(enqueue(phi));
    }
  }
  span.AddArg("family", static_cast<int64_t>(family_.size()));

  index_ = std::make_unique<ViolationIndex>(dirty, family_,
                                            options_.use_encoded);
  facts_.resize(family_.size());
  seen_epochs_.assign(family_.size(), -1);
  changed_gen_.assign(family_.size(), 0);
  solved_costs_.assign(variants_.size(),
                       std::numeric_limits<double>::quiet_NaN());
  solved_gen_.assign(variants_.size(), -1);
  abort_bounds_.assign(variants_.size(),
                       std::numeric_limits<double>::quiet_NaN());
  abort_gen_.assign(variants_.size(), -1);
  for (size_t k = 0; k < family_.size(); ++k) RefreshFacts(k);
}

int64_t VariantTracker::ViolationCap() const {
  return options_.max_violations_per_tuple > 0
             ? static_cast<int64_t>(
                   options_.max_violations_per_tuple *
                   std::max(index_->relation().num_rows(), 1))
             : std::numeric_limits<int64_t>::max();
}

void VariantTracker::RefreshFacts(size_t k) {
  VariantFacts& f = facts_[k];
  f = VariantFacts{};
  if (index_->ViolationCountOf(static_cast<int>(k)) > ViolationCap()) {
    // Mirrors the exact-cap semantics of FindViolationsOfCapped: strictly
    // more violations than the cap is hopeless.
    f.hopeless = true;
    f.delta_l = std::numeric_limits<double>::infinity();
    f.delta_u = std::numeric_limits<double>::infinity();
  } else {
    f.violations = index_->ViolationsOf(static_cast<int>(k));
    // Facts carry position-free violations (constraint_index 0), exactly
    // like the per-constraint scans of ScanVariantFacts; the search
    // re-stamps candidate positions when it assembles a union set.
    for (Violation& v : f.violations) v.constraint_index = 0;
    if (!f.violations.empty()) {
      ConflictHypergraph g = ConflictHypergraph::Build(
          index_->relation(), {family_[k]}, f.violations, options_.vfree.cost);
      RepairCostBounds bounds = ComputeBounds(
          g, family_[k].Degree(), options_.vfree.cost, options_.vfree.cover);
      f.delta_l = bounds.lower;
      f.delta_u = bounds.upper;
    }
  }
  seen_epochs_[k] = index_->ViolationEpochOf(static_cast<int>(k));
  changed_gen_[k] = generation_;
}

int VariantTracker::Ingest(const std::vector<RowEdit>& edits) {
  TraceSpan span("stream/tracker_ingest");
  // Drop updates that rewrite a cell of D with its current value: the
  // index's kill-and-rescan of a touched row bumps violation epochs even
  // when the violation set comes back unchanged, and a no-op edit must not
  // invalidate solved-cost bounds (the quiet-batch drift test pins this).
  std::vector<RowEdit> changing;
  changing.reserve(edits.size());
  std::set<std::pair<int, AttrId>> edited;  // cells rewritten earlier in batch
  for (const RowEdit& e : edits) {
    // Only the first edit of a cell can be judged against the pre-batch
    // state; later ones see whatever the earlier edit left behind.
    if (!e.insert && e.row < index_->relation().num_rows() &&
        edited.insert({e.row, e.attr}).second &&
        index_->relation().Get(e.row, e.attr) == e.value) {
      continue;
    }
    changing.push_back(e);
  }
  index_->ApplyBatch(changing);
  ++generation_;
  int updates = 0;
  const int64_t cap = ViolationCap();
  for (size_t k = 0; k < family_.size(); ++k) {
    const bool epoch_moved =
        index_->ViolationEpochOf(static_cast<int>(k)) != seen_epochs_[k];
    // Inserts grow the violation cap, so a hopeless verdict can flip even
    // when the constraint's violation set did not change.
    const bool hopeless_now =
        index_->ViolationCountOf(static_cast<int>(k)) > cap;
    if (!epoch_moved && hopeless_now == facts_[k].hopeless) continue;
    RefreshFacts(k);
    ++updates;
  }
  span.AddArg("bound_updates", updates);
  return updates;
}

void VariantTracker::RecordSearch(const VariantSearchResult& result) {
  for (size_t vi = 0; vi < variants_.size(); ++vi) {
    if (vi < result.solved_costs.size() &&
        !std::isnan(result.solved_costs[vi])) {
      solved_costs_[vi] = result.solved_costs[vi];
      solved_gen_[vi] = generation_;
    }
    if (vi < result.abort_bounds.size() &&
        !std::isnan(result.abort_bounds[vi])) {
      abort_bounds_[vi] = result.abort_bounds[vi];
      abort_gen_[vi] = generation_;
    }
  }
}

double VariantTracker::BestRivalBound(const ConstraintSet& incumbent) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t vi = 0; vi < variants_.size(); ++vi) {
    if (variants_[vi].constraints == incumbent) continue;
    double lb = 0.0;
    bool hopeless = false;
    bool solved_valid = solved_gen_[vi] >= 0 && !std::isnan(solved_costs_[vi]);
    bool abort_valid = abort_gen_[vi] >= 0 && !std::isnan(abort_bounds_[vi]);
    for (size_t k : members_[vi]) {
      hopeless |= facts_[k].hopeless;
      lb = std::max(lb, facts_[k].delta_l);
      // A recorded realized cost (or abort threshold) holds only while
      // every member's facts are unchanged since the search that produced
      // it.
      solved_valid &= changed_gen_[k] <= solved_gen_[vi];
      abort_valid &= changed_gen_[k] <= abort_gen_[vi];
    }
    if (hopeless) continue;
    if (solved_valid) lb = std::max(lb, solved_costs_[vi]);
    if (abort_valid) lb = std::max(lb, abort_bounds_[vi]);
    best = std::min(best, lb);
  }
  return best;
}

// ---------------------------------------------------------------------------
// StreamingRepairer

StreamingRepairer::StreamingRepairer(const Relation& I,
                                     const ConstraintSet& sigma,
                                     const StreamingOptions& options)
    : options_(options) {
  TraceSpan span("stream/initial_repair");
  if (options_.reopen_variants) {
    // The unfrozen path runs the factored search over tracker-maintained
    // facts from the start, so every later reopen — and the from-scratch
    // twin the drift tests compare against — goes through the identical
    // candidate loop.
    tracker_ = std::make_unique<VariantTracker>(I, sigma, options_.repair);
    VariantSearchResult sr = CVTolerantSearchWithFacts(
        I, sigma, tracker_->variants(), tracker_->FactsFn(), options_.repair,
        &fresh_counter_, tracker_->encoded());
    tracker_->RecordSearch(sr);
    Relation repaired = sr.have_result ? std::move(sr.repaired) : I;
    variant_ = sr.have_result ? std::move(sr.variant) : sigma;
    realized_cost_ = sr.have_result ? sr.cost : 0.0;
    initial_stats_.datarepair_calls = sr.datarepair_calls;
    initial_stats_.variants_enumerated =
        static_cast<int>(tracker_->variants().size());
    initial_stats_.variants_pruned_bounds = sr.variants_pruned;
    initial_stats_.repair_cost = realized_cost_;
    initial_stats_.changed_cells = ChangedCellCount(I, repaired);
    index_ = std::make_unique<ViolationIndex>(repaired, variant_,
                                              options_.repair.use_encoded);
    return;
  }
  RepairResult initial = CVTolerantRepair(I, sigma, options_.repair);
  variant_ = initial.satisfied_constraints;
  initial_stats_ = initial.stats;
  // Continue fresh ids above any the initial repair minted, so streamed
  // fixes never alias an existing fv.
  for (int r = 0; r < initial.repaired.num_rows(); ++r) {
    for (AttrId a = 0; a < initial.repaired.num_attributes(); ++a) {
      const Value& v = initial.repaired.Get(r, a);
      if (v.is_fresh()) {
        fresh_counter_ = std::max(fresh_counter_, v.fresh_id() + 1);
      }
    }
  }
  index_ = std::make_unique<ViolationIndex>(initial.repaired, variant_,
                                            options_.repair.use_encoded);
}

void StreamingRepairer::EvictForEdits(const std::vector<RowEdit>& edits,
                                      StreamBatchResult* out) {
  bool any_insert = false;
  std::vector<int> rows;
  std::vector<AttrId> attrs;
  for (const RowEdit& e : edits) {
    if (e.insert) {
      any_insert = true;
      break;
    }
    rows.push_back(e.row);
    attrs.push_back(e.attr);
  }
  if (any_insert) {
    // An insert shifts every attribute's active domain and frequency
    // ranking, so no prior solution's solver inputs are reproducible.
    out->cache_invalidations += cross_batch_cache_.Clear();
    return;
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  out->cache_invalidations += cross_batch_cache_.EvictTouching(rows, attrs);
}

StreamBatchResult StreamingRepairer::ApplyBatch(
    const std::vector<RowEdit>& edits) {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("stream/apply_batch");
  span.AddArg("edits", static_cast<int64_t>(edits.size()));

  StreamBatchResult out;
  out.edits = static_cast<int>(edits.size());
  const int64_t rechecked_before = index_->rows_rechecked();

  // Everything materialized before this batch becomes prior-epoch: from
  // here on it answers lookups only on exact atom equality, and only if it
  // survives the staleness evictions below.
  cross_batch_cache_.BeginEpoch();
  if (options_.cross_batch_cache) EvictForEdits(edits, &out);
  if (tracker_) out.bound_updates = tracker_->Ingest(edits);

  std::vector<int> touched = index_->ApplyBatch(edits);
  out.rows_touched = static_cast<int>(touched.size());

  std::vector<Violation> violations = index_->CurrentViolations();
  out.violations = static_cast<int>(violations.size());

  if (!violations.empty()) {
    // Dirty closure: the touched rows plus every row sharing a violation
    // with them. (The instance was violation-free before the batch, so
    // every live violation involves a touched row.)
    {
      std::vector<int> dirty = index_->RowsWithViolations();
      dirty.insert(dirty.end(), touched.begin(), touched.end());
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      out.dirty_rows = static_cast<int>(dirty.size());
    }

    const Relation& W = index_->relation();
    // Recomputed per batch so the scoped solve sees exactly the stats a
    // from-scratch repair of the accumulated instance would — the contract
    // is bit-identity with scratch, and frequencies steer the solver.
    DomainStats stats_of_W(W);
    RepairStats batch_stats;
    MaterializedCache local_cache;
    MaterializedCache* cache =
        options_.cross_batch_cache ? &cross_batch_cache_ : &local_cache;
    std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
        W, stats_of_W, variant_, std::move(violations), options_.repair,
        cache, &batch_stats, &fresh_counter_, index_->encoded());
    // delta_min defaults to +inf, so the scoped solve cannot abort.
    assert(fix.has_value());
    out.components = fix->components;
    out.repair_cost = fix->cost;
    std::vector<int> fix_rows;
    std::vector<AttrId> fix_attrs;
    for (auto& [cell, value] : fix->assignments) {
      // Solutions may keep a cell's current value; skip those entirely —
      // the instance is unchanged, so no violation can have appeared and
      // no re-scan is owed.
      if (index_->relation().Get(cell) == value) continue;
      ++out.cells_changed;
      fix_rows.push_back(cell.row);
      fix_attrs.push_back(cell.attr);
      index_->ApplyChange(cell, std::move(value));
    }
    // Every live violation had a covering cell assigned a changed value
    // (atoms force it), and that cell's ApplyChange retired it.
    assert(!index_->HasViolations());
    if (options_.cross_batch_cache && !fix_rows.empty()) {
      // The fixes themselves changed cells (and domain frequencies) that
      // prior entries — including ones stored moments ago in this batch —
      // may depend on.
      std::sort(fix_rows.begin(), fix_rows.end());
      fix_rows.erase(std::unique(fix_rows.begin(), fix_rows.end()),
                     fix_rows.end());
      std::sort(fix_attrs.begin(), fix_attrs.end());
      fix_attrs.erase(std::unique(fix_attrs.begin(), fix_attrs.end()),
                      fix_attrs.end());
      out.cache_invalidations +=
          cross_batch_cache_.EvictTouching(fix_rows, fix_attrs);
    }
  } else {
    out.dirty_rows = 0;
  }

  if (tracker_) MaybeReopen(&out);

  out.rows_rechecked = index_->rows_rechecked() - rechecked_before;
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  span.AddArg("components", out.components);
  span.AddArg("rows_rechecked", out.rows_rechecked);

  totals_.batches += 1;
  totals_.edits += out.edits;
  totals_.rows_ingested += out.rows_touched;
  totals_.rows_rechecked += out.rows_rechecked;
  totals_.components_resolved += out.components;
  totals_.cells_changed += out.cells_changed;
  totals_.variant_reopens += out.reopened ? 1 : 0;
  totals_.variant_switches += out.variant_switched ? 1 : 0;
  totals_.bound_updates += out.bound_updates;
  totals_.cache_invalidations += out.cache_invalidations;

  const StreamCounters& c = StreamCounters::Get();
  c.batches->Increment();
  c.edits->Add(out.edits);
  c.rows_ingested->Add(out.rows_touched);
  c.rows_rechecked->Add(out.rows_rechecked);
  c.components_resolved->Add(out.components);
  c.cells_changed->Add(out.cells_changed);
  if (out.reopened) c.variant_reopens->Increment();
  c.bound_updates->Add(out.bound_updates);
  c.cache_invalidations->Add(out.cache_invalidations);
  return out;
}

void StreamingRepairer::MaybeReopen(StreamBatchResult* out) {
  const CostModel& cost = options_.repair.vfree.cost;
  realized_cost_ =
      RepairCost(tracker_->dirty(), index_->relation(), cost);
  out->realized_cost = realized_cost_;
  out->rival_bound = tracker_->BestRivalBound(variant_);
  // Skip only when every rival bound clears realized + margin: any bound
  // at or above that line — δ_l, a recorded solved cost, or an abort
  // threshold — puts the rival's true cost strictly above the incumbent's,
  // so it cannot win even the search's deterministic tie-break. A rival
  // whose bound merely *ties* the incumbent (bound below the margin line)
  // could win that tie-break (candidates in ascending-δ_l order,
  // strict-min cost), and the contract is that the held variant always
  // equals what the from-scratch search would choose — so it re-opens.
  if (out->rival_bound >= realized_cost_ + options_.reopen_margin) return;

  TraceSpan span("stream/variant_reopen");
  out->reopened = true;
  VariantSearchResult sr = CVTolerantSearchWithFacts(
      tracker_->dirty(), tracker_->sigma(), tracker_->variants(),
      tracker_->FactsFn(), options_.repair, &fresh_counter_,
      tracker_->encoded());
  tracker_->RecordSearch(sr);
  if (!sr.have_result || sr.variant == variant_) {
    // The incumbent stood. Keep the incrementally repaired instance — its
    // realized cost can even undercut the search's from-scratch solve of
    // the incumbent (components were solved against intermediate states) —
    // and rely on the recorded candidate costs to lift the rivals' bounds
    // until their facts next change.
    return;
  }

  out->variant_switched = true;
  span.AddArg("cost", sr.cost);
  if (options_.cross_batch_cache) {
    if (!IsRefinedBy(variant_, sr.variant)) {
      // Definition 7 lifted to the sets: some constraint of the new Σ'
      // refines no constraint of the old one, so stored contexts carry no
      // reusable guarantee — drop everything.
      out->cache_invalidations += cross_batch_cache_.Clear();
    } else {
      // The new Σ' refines the old one; entries survive unless the newly
      // adopted repair rewrote cells (or attribute domains) under them.
      std::vector<int> diff_rows;
      std::vector<AttrId> diff_attrs;
      const Relation& old_W = index_->relation();
      for (int r = 0; r < old_W.num_rows(); ++r) {
        for (AttrId a = 0; a < old_W.num_attributes(); ++a) {
          if (old_W.Get(r, a) == sr.repaired.Get(r, a)) continue;
          diff_rows.push_back(r);
          diff_attrs.push_back(a);
        }
      }
      std::sort(diff_rows.begin(), diff_rows.end());
      diff_rows.erase(std::unique(diff_rows.begin(), diff_rows.end()),
                      diff_rows.end());
      std::sort(diff_attrs.begin(), diff_attrs.end());
      diff_attrs.erase(std::unique(diff_attrs.begin(), diff_attrs.end()),
                       diff_attrs.end());
      out->cache_invalidations +=
          cross_batch_cache_.EvictTouching(diff_rows, diff_attrs);
    }
  }
  variant_ = std::move(sr.variant);
  realized_cost_ = sr.cost;
  out->realized_cost = realized_cost_;
  index_ = std::make_unique<ViolationIndex>(sr.repaired, variant_,
                                            options_.repair.use_encoded);
}

ReplayWorkload MakeReplayWorkload(const Relation& dirty, int num_batches,
                                  int batch_size, uint64_t seed) {
  ReplayWorkload out;
  const int n = dirty.num_rows();
  const int num_attrs = dirty.num_attributes();
  const int total_edits = num_batches * batch_size;
  // Hold out at most half the edits — and at most a quarter of the rows —
  // as insert replays; everything else is an update of a live row.
  const int inserts = std::min(total_edits / 2, n / 4);
  const int base_rows = n - inserts;
  out.base = dirty;
  out.base.Truncate(base_rows);

  std::mt19937_64 rng(seed);
  int next_insert = base_rows;  // next held-out row to replay
  int live_rows = base_rows;    // rows present at apply time
  // Spread the inserts evenly over the stream.
  const int stride = inserts > 0 ? std::max(1, total_edits / inserts) : 0;

  out.batches.resize(static_cast<size_t>(num_batches));
  int edit_index = 0;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<RowEdit>& batch = out.batches[static_cast<size_t>(b)];
    batch.reserve(static_cast<size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i, ++edit_index) {
      const bool do_insert =
          next_insert < n && stride > 0 && edit_index % stride == 0;
      if (do_insert) {
        batch.push_back(RowEdit::Insert(dirty.row(next_insert)));
        ++next_insert;
        ++live_rows;
        continue;
      }
      // Typo-style noise: copy another tuple's value of the same attribute
      // into a random live cell. Drawing the source from all of `dirty`
      // keeps the value distribution of the generator.
      const int row = static_cast<int>(rng() % static_cast<uint64_t>(
                                                   std::max(1, live_rows)));
      const AttrId attr = static_cast<AttrId>(
          rng() % static_cast<uint64_t>(std::max(1, num_attrs)));
      const int src =
          static_cast<int>(rng() % static_cast<uint64_t>(std::max(1, n)));
      batch.push_back(RowEdit::Update(row, attr, dirty.Get(src, attr)));
    }
  }
  return out;
}

ReplayWorkload MakeDriftWorkload(const Relation& dirty, int num_batches,
                                 int batch_size, uint64_t seed) {
  ReplayWorkload out;
  const int n = dirty.num_rows();
  const int num_attrs = dirty.num_attributes();
  const int total_edits = num_batches * batch_size;
  const int inserts = std::min(total_edits / 2, n / 4);
  const int base_rows = n - inserts;
  out.base = dirty;
  out.base.Truncate(base_rows);

  std::mt19937_64 rng(seed);
  int next_insert = base_rows;
  int live_rows = base_rows;
  const int stride = inserts > 0 ? std::max(1, total_edits / inserts) : 0;
  // The source window covers a quarter of the relation and slides from its
  // head to its tail over the stream, so early batches copy values from
  // one part of the distribution and late batches from another — that
  // skews per-attribute frequencies (and with them Eq. 2 weighted costs
  // and the per-variant bounds) monotonically over time.
  const int window = std::max(1, n / 4);

  out.batches.resize(static_cast<size_t>(num_batches));
  int edit_index = 0;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<RowEdit>& batch = out.batches[static_cast<size_t>(b)];
    batch.reserve(static_cast<size_t>(batch_size));
    const int window_start =
        num_batches > 1
            ? static_cast<int>(static_cast<int64_t>(n - window) * b /
                               (num_batches - 1))
            : 0;
    for (int i = 0; i < batch_size; ++i, ++edit_index) {
      const bool do_insert =
          next_insert < n && stride > 0 && edit_index % stride == 0;
      if (do_insert) {
        batch.push_back(RowEdit::Insert(dirty.row(next_insert)));
        ++next_insert;
        ++live_rows;
        continue;
      }
      const int row = static_cast<int>(rng() % static_cast<uint64_t>(
                                                   std::max(1, live_rows)));
      const AttrId attr = static_cast<AttrId>(
          rng() % static_cast<uint64_t>(std::max(1, num_attrs)));
      const int src =
          window_start +
          static_cast<int>(rng() % static_cast<uint64_t>(window));
      batch.push_back(
          RowEdit::Update(row, attr, dirty.Get(std::min(src, n - 1), attr)));
    }
  }
  return out;
}

}  // namespace cvrepair
