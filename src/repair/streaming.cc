#include "repair/streaming.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <random>
#include <utility>

#include "util/metrics.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

/// Cached "stream." counter handles (handles are stable for the process
/// lifetime; ResetAll only zeroes values).
struct StreamCounters {
  MetricCounter* batches;
  MetricCounter* edits;
  MetricCounter* rows_ingested;
  MetricCounter* rows_rechecked;
  MetricCounter* components_resolved;
  MetricCounter* cells_changed;

  static const StreamCounters& Get() {
    static StreamCounters c = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      StreamCounters out;
      out.batches = r.GetCounter("stream.batches");
      out.edits = r.GetCounter("stream.edits");
      out.rows_ingested = r.GetCounter("stream.rows_ingested");
      out.rows_rechecked = r.GetCounter("stream.rows_rechecked");
      out.components_resolved = r.GetCounter("stream.components_resolved");
      out.cells_changed = r.GetCounter("stream.cells_changed");
      return out;
    }();
    return c;
  }
};

}  // namespace

StreamingRepairer::StreamingRepairer(const Relation& I,
                                     const ConstraintSet& sigma,
                                     const StreamingOptions& options)
    : options_(options) {
  TraceSpan span("stream/initial_repair");
  RepairResult initial = CVTolerantRepair(I, sigma, options_.repair);
  variant_ = initial.satisfied_constraints;
  initial_stats_ = initial.stats;
  // Continue fresh ids above any the initial repair minted, so streamed
  // fixes never alias an existing fv.
  for (int r = 0; r < initial.repaired.num_rows(); ++r) {
    for (AttrId a = 0; a < initial.repaired.num_attributes(); ++a) {
      const Value& v = initial.repaired.Get(r, a);
      if (v.is_fresh()) {
        fresh_counter_ = std::max(fresh_counter_, v.fresh_id() + 1);
      }
    }
  }
  index_ = std::make_unique<ViolationIndex>(initial.repaired, variant_,
                                            options_.repair.use_encoded);
}

StreamBatchResult StreamingRepairer::ApplyBatch(
    const std::vector<RowEdit>& edits) {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("stream/apply_batch");
  span.AddArg("edits", static_cast<int64_t>(edits.size()));

  StreamBatchResult out;
  out.edits = static_cast<int>(edits.size());
  const int64_t rechecked_before = index_->rows_rechecked();

  std::vector<int> touched = index_->ApplyBatch(edits);
  out.rows_touched = static_cast<int>(touched.size());

  std::vector<Violation> violations = index_->CurrentViolations();
  out.violations = static_cast<int>(violations.size());

  if (!violations.empty()) {
    // Dirty closure: the touched rows plus every row sharing a violation
    // with them. (The instance was violation-free before the batch, so
    // every live violation involves a touched row.)
    {
      std::vector<int> dirty = index_->RowsWithViolations();
      dirty.insert(dirty.end(), touched.begin(), touched.end());
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      out.dirty_rows = static_cast<int>(dirty.size());
    }

    const Relation& W = index_->relation();
    // Recomputed per batch so the scoped solve sees exactly the stats a
    // from-scratch repair of the accumulated instance would — the contract
    // is bit-identity with scratch, and frequencies steer the solver.
    DomainStats stats_of_W(W);
    RepairStats batch_stats;
    MaterializedCache local_cache;
    MaterializedCache* cache =
        options_.cross_batch_cache ? &cross_batch_cache_ : &local_cache;
    std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
        W, stats_of_W, variant_, std::move(violations), options_.repair,
        cache, &batch_stats, &fresh_counter_, index_->encoded());
    // delta_min defaults to +inf, so the scoped solve cannot abort.
    assert(fix.has_value());
    out.components = fix->components;
    out.repair_cost = fix->cost;
    for (auto& [cell, value] : fix->assignments) {
      // Solutions may keep a cell's current value; skip those entirely —
      // the instance is unchanged, so no violation can have appeared and
      // no re-scan is owed.
      if (index_->relation().Get(cell) == value) continue;
      ++out.cells_changed;
      index_->ApplyChange(cell, std::move(value));
    }
    // Every live violation had a covering cell assigned a changed value
    // (atoms force it), and that cell's ApplyChange retired it.
    assert(!index_->HasViolations());
  } else {
    out.dirty_rows = 0;
  }

  out.rows_rechecked = index_->rows_rechecked() - rechecked_before;
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  span.AddArg("components", out.components);
  span.AddArg("rows_rechecked", out.rows_rechecked);

  totals_.batches += 1;
  totals_.edits += out.edits;
  totals_.rows_ingested += out.rows_touched;
  totals_.rows_rechecked += out.rows_rechecked;
  totals_.components_resolved += out.components;
  totals_.cells_changed += out.cells_changed;

  const StreamCounters& c = StreamCounters::Get();
  c.batches->Increment();
  c.edits->Add(out.edits);
  c.rows_ingested->Add(out.rows_touched);
  c.rows_rechecked->Add(out.rows_rechecked);
  c.components_resolved->Add(out.components);
  c.cells_changed->Add(out.cells_changed);
  return out;
}

ReplayWorkload MakeReplayWorkload(const Relation& dirty, int num_batches,
                                  int batch_size, uint64_t seed) {
  ReplayWorkload out;
  const int n = dirty.num_rows();
  const int num_attrs = dirty.num_attributes();
  const int total_edits = num_batches * batch_size;
  // Hold out at most half the edits — and at most a quarter of the rows —
  // as insert replays; everything else is an update of a live row.
  const int inserts = std::min(total_edits / 2, n / 4);
  const int base_rows = n - inserts;
  out.base = dirty;
  out.base.Truncate(base_rows);

  std::mt19937_64 rng(seed);
  int next_insert = base_rows;  // next held-out row to replay
  int live_rows = base_rows;    // rows present at apply time
  // Spread the inserts evenly over the stream.
  const int stride = inserts > 0 ? std::max(1, total_edits / inserts) : 0;

  out.batches.resize(static_cast<size_t>(num_batches));
  int edit_index = 0;
  for (int b = 0; b < num_batches; ++b) {
    std::vector<RowEdit>& batch = out.batches[static_cast<size_t>(b)];
    batch.reserve(static_cast<size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i, ++edit_index) {
      const bool do_insert =
          next_insert < n && stride > 0 && edit_index % stride == 0;
      if (do_insert) {
        batch.push_back(RowEdit::Insert(dirty.row(next_insert)));
        ++next_insert;
        ++live_rows;
        continue;
      }
      // Typo-style noise: copy another tuple's value of the same attribute
      // into a random live cell. Drawing the source from all of `dirty`
      // keeps the value distribution of the generator.
      const int row = static_cast<int>(rng() % static_cast<uint64_t>(
                                                   std::max(1, live_rows)));
      const AttrId attr = static_cast<AttrId>(
          rng() % static_cast<uint64_t>(std::max(1, num_attrs)));
      const int src =
          static_cast<int>(rng() % static_cast<uint64_t>(std::max(1, n)));
      batch.push_back(RowEdit::Update(row, attr, dirty.Get(src, attr)));
    }
  }
  return out;
}

}  // namespace cvrepair
