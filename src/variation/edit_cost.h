#ifndef CVREPAIR_VARIATION_EDIT_COST_H_
#define CVREPAIR_VARIATION_EDIT_COST_H_

#include <vector>

#include "dc/constraint.h"
#include "variation/predicate_weights.h"

namespace cvrepair {

/// Cost model for constraint variation (Definition 2, Eq. 1):
///   edit(φ, φ') = Σ_{P inserted} c(P)  +  λ · Σ_{P deleted} c(P)
/// with λ in [-1, 0] (default -0.5): insertions count positively (they
/// must be bounded to avoid overfitting), deletions count negatively (they
/// are rewarded for exposing new violations). λ = -1 is discouraged — it
/// makes predicate substitution free (Section 2.2.3).
///
/// c(P) is 1 by default (unit cost); attach a PredicateWeights to switch
/// to the distribution-weighted cost |Pr(P) − Pr(φ)| of Eq. 2.
struct VariationCostModel {
  double lambda = -0.5;
  /// Not owned; nullptr selects unit costs.
  const PredicateWeights* weights = nullptr;
  /// Floor applied to weighted predicate costs so that a perfectly
  /// coinciding predicate still has a nonzero price (keeps the variant
  /// enumeration finite under any θ).
  double min_predicate_cost = 0.05;

  /// c(P) with respect to the base constraint `phi`.
  double PredicateCost(const Predicate& p, const DenialConstraint& phi) const;
};

/// edit(φ, φ'): predicates of `variant` absent from `original` are charged
/// as insertions; predicates of `original` absent from `variant` as
/// deletions. (Eq. 1 — following Example 4: the inserted set is weighted
/// +1, the deleted set λ.)
///
/// Weighted-cost reference point (Eq. 2): c(P) = |Pr(P) − Pr(φ)| is taken
/// against the *base* constraint φ for insertions and deletions alike —
/// never against the partially edited variant. This is deliberate, not an
/// accident of implementation: Eq. 2 defines Pr(φ) as the satisfaction
/// probability of the constraint being varied, Example 4 prices the
/// substitution Tax≤ → Tax< as c(Tax<) + λ·c(Tax≤) with both terms
/// relative to φ4, and a base-relative c(P) keeps each predicate's price
/// independent of the order edits are applied in — which the variant
/// generator's DFS cost pruning and the Θ budget arithmetic both rely on
/// (an insertion's cost must not change because another insertion was
/// chosen first). Pinned by EditCostTest.* in tests/costs_weights_test.cc.
double EditCost(const DenialConstraint& original,
                const DenialConstraint& variant,
                const VariationCostModel& model);

/// Θ(Σ, Σ') = Σ_i edit(φ_i, φ_i') (Definition 2). The two sets must be
/// positionally aligned (variant i derives from original i).
double VariationCost(const ConstraintSet& original,
                     const ConstraintSet& variant,
                     const VariationCostModel& model);

}  // namespace cvrepair

#endif  // CVREPAIR_VARIATION_EDIT_COST_H_
