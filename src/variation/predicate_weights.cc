#include "variation/predicate_weights.h"

#include <cmath>
#include <random>

namespace cvrepair {

PredicateWeights::PredicateWeights(const Relation& I, int max_pairs,
                                   uint64_t seed)
    : I_(&I) {
  int n = I.num_rows();
  int64_t all = static_cast<int64_t>(n) * (n - 1);
  if (all <= max_pairs) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) pairs_.push_back({i, j});
      }
    }
    return;
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  pairs_.reserve(max_pairs);
  while (static_cast<int>(pairs_.size()) < max_pairs) {
    int i = pick(rng);
    int j = pick(rng);
    if (i != j) pairs_.push_back({i, j});
  }
}

double PredicateWeights::PrPredicate(const Predicate& p) const {
  auto it = pred_memo_.find(p);
  if (it != pred_memo_.end()) return it->second;
  int64_t hits = 0;
  if (p.MaxTupleVar() == 0) {
    std::vector<int> rows(1);
    for (int i = 0; i < I_->num_rows(); ++i) {
      rows[0] = i;
      if (p.Eval(*I_, rows)) ++hits;
    }
    double pr = I_->num_rows() ? static_cast<double>(hits) / I_->num_rows() : 0;
    pred_memo_[p] = pr;
    return pr;
  }
  std::vector<int> rows(2);
  for (const auto& [i, j] : pairs_) {
    rows[0] = i;
    rows[1] = j;
    if (p.Eval(*I_, rows)) ++hits;
  }
  double pr = pairs_.empty() ? 0 : static_cast<double>(hits) / pairs_.size();
  pred_memo_[p] = pr;
  return pr;
}

double PredicateWeights::PrConstraint(const DenialConstraint& phi) const {
  auto it = constraint_memo_.find(phi.predicates());
  if (it != constraint_memo_.end()) return it->second;
  int64_t sat = 0;
  if (phi.NumTupleVars() == 1) {
    std::vector<int> rows(1);
    for (int i = 0; i < I_->num_rows(); ++i) {
      rows[0] = i;
      if (phi.IsSatisfied(*I_, rows)) ++sat;
    }
    double pr =
        I_->num_rows() ? static_cast<double>(sat) / I_->num_rows() : 1.0;
    constraint_memo_[phi.predicates()] = pr;
    return pr;
  }
  std::vector<int> rows(2);
  for (const auto& [i, j] : pairs_) {
    rows[0] = i;
    rows[1] = j;
    if (phi.IsSatisfied(*I_, rows)) ++sat;
  }
  double pr = pairs_.empty() ? 1.0 : static_cast<double>(sat) / pairs_.size();
  constraint_memo_[phi.predicates()] = pr;
  return pr;
}

double PredicateWeights::Cost(const Predicate& p,
                              const DenialConstraint& phi) const {
  return std::abs(PrPredicate(p) - PrConstraint(phi));
}

}  // namespace cvrepair
