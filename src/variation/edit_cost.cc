#include "variation/edit_cost.h"

#include <algorithm>
#include <cassert>

namespace cvrepair {

double VariationCostModel::PredicateCost(const Predicate& p,
                                         const DenialConstraint& phi) const {
  if (weights == nullptr) return 1.0;
  return std::max(weights->Cost(p, phi), min_predicate_cost);
}

double EditCost(const DenialConstraint& original,
                const DenialConstraint& variant,
                const VariationCostModel& model) {
  double cost = 0.0;
  for (const Predicate& p : variant.predicates()) {
    if (!original.Contains(p)) cost += model.PredicateCost(p, original);
  }
  for (const Predicate& p : original.predicates()) {
    if (!variant.Contains(p)) {
      cost += model.lambda * model.PredicateCost(p, original);
    }
  }
  return cost;
}

double VariationCost(const ConstraintSet& original,
                     const ConstraintSet& variant,
                     const VariationCostModel& model) {
  assert(original.size() == variant.size());
  double total = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    total += EditCost(original[i], variant[i], model);
  }
  return total;
}

}  // namespace cvrepair
