#ifndef CVREPAIR_VARIATION_VARIANT_GENERATOR_H_
#define CVREPAIR_VARIATION_VARIANT_GENERATOR_H_

#include <limits>
#include <vector>

#include "dc/constraint.h"
#include "dc/predicate_space.h"
#include "variation/edit_cost.h"

namespace cvrepair {

/// One variant φ' of a single constraint φ, with its edit cost and the
/// price of the cheapest further insertion (∞ when no valid insertion
/// remains) — used for the θ-maximality test.
struct ConstraintVariant {
  DenialConstraint constraint;
  double cost = 0.0;
  int num_insertions = 0;
  int num_deletions = 0;
  double cheapest_next_insertion = std::numeric_limits<double>::infinity();
  /// Cheapest cost increase from undoing one free-standing (non
  /// substituted) deletion; ∞ when every deletion is a substitution.
  /// Undoing a deletion refines the variant (Definition 3), so a variant
  /// whose undo still fits θ is non-maximal (Lemma 1 dominates it).
  double cheapest_deletion_undo = std::numeric_limits<double>::infinity();
};

/// One variant Σ' of the whole constraint set, positionally aligned with
/// the original Σ.
struct SigmaVariant {
  ConstraintSet constraints;
  double cost = 0.0;
};

/// Structural limits and the tolerance for variant enumeration.
struct VariantGenOptions {
  /// Constraint-variance tolerance θ: Θ(Σ, Σ') ≤ θ. May be negative
  /// (Appendix D.2: net predicate deletion).
  double theta = 1.0;
  VariationCostModel cost_model;
  PredicateSpaceOptions space;
  /// Structural caps bounding the searched family of variants.
  int max_deletions_per_constraint = 3;
  int max_insertions_per_constraint = 2;
  int max_changed_constraints = 2;
  int max_sigma_variants = 20000;
  /// Data used for the meaningful-predicate test below (not owned;
  /// nullptr disables the test). The determination of meaningful
  /// predicates is delegated to DC discovery in the paper ([7], footnote
  /// 2); this is our data-driven stand-in.
  const Relation* data = nullptr;
  /// An insertion P into φ must hold on at least this fraction of sampled
  /// tuple pairs that already agree on φ's equality predicates. Below the
  /// threshold the inserted predicate is key-like for the constraint's
  /// groups: it would make φ' vacuous on the data (the data-level
  /// analogue of a trivial DC) and is skipped.
  double min_conditional_support = 0.10;
  /// Pair-sample size for the conditional-support estimate.
  int support_sample = 4000;
  /// Non-equality predicates (the "consequent-like" !=, <, >, <=, >=) may
  /// only be deleted when an inserted predicate on the same operands
  /// replaces them (operator substitution, e.g. <= → < in Example 4).
  /// Deleting them outright would let the Θ budget launder a constraint's
  /// meaning away (delete the consequent, insert an unrelated predicate at
  /// net cost ≈ 0); the paper's own variants — FD LHS edits and operator
  /// substitutions — never do that. Set true to lift the restriction.
  bool allow_inequality_deletion = false;
  /// Order predicates (<, >) are only inserted on attributes already used
  /// by the original constraint (strengthening / substitution, as in all
  /// of the paper's examples); equality predicates may come from any
  /// meaningful attribute (FD-style refinement, Example 5).
  bool order_insertions_on_own_attrs_only = true;
  /// Prune Σ' that are non-maximal w.r.t. θ (Section 3.1): some valid
  /// single insertion still fits the budget, so a refining variant with
  /// no worse minimum repair (Lemma 1) is also enumerated.
  bool prune_nonmaximal = true;
  /// Keep Σ itself (Θ = 0) as a candidate even when non-maximal, so that
  /// accurate input constraints always compete (Algorithm 1 seeds its
  /// bound with δ_u(Σ, I) for the same reason).
  bool always_include_original = true;
};

/// Enumeration counters reported back to callers.
struct VariantGenStats {
  int per_constraint_variants = 0;
  int sigma_enumerated = 0;       ///< before maximality pruning
  int pruned_nonmaximal = 0;
  int pruned_trivial = 0;
  bool capped = false;            ///< max_sigma_variants was hit
};

/// Enumerates variants of one constraint with edit cost ≤ `max_cost`:
/// all deletion subsets (leaving at least one predicate) combined with
/// insertion subsets drawn from `space`, subject to the structural caps in
/// `options`. Inserted predicates never duplicate operand pairs remaining
/// in the constraint, and trivial results (contradicting predicates,
/// Section 2.2.1) are discarded. Proposition 2 is honored through the
/// predicate space itself (operators {<, >, =} only). Results are sorted
/// by cost, identity variant first.
std::vector<ConstraintVariant> GenerateConstraintVariants(
    const DenialConstraint& phi, const std::vector<Predicate>& space,
    const VariantGenOptions& options, double max_cost,
    VariantGenStats* stats = nullptr);

/// Enumerates the candidate set D of Section 2.3: the cross product of
/// per-constraint variants with Θ(Σ, Σ') ≤ θ, pruned to θ-maximal
/// variants (plus Σ itself when always_include_original). Deterministic;
/// capped at max_sigma_variants.
std::vector<SigmaVariant> GenerateSigmaVariants(const ConstraintSet& sigma,
                                                const Schema& schema,
                                                const VariantGenOptions& options,
                                                VariantGenStats* stats = nullptr);

}  // namespace cvrepair

#endif  // CVREPAIR_VARIATION_VARIANT_GENERATOR_H_
