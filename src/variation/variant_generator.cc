#include "variation/variant_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "dc/predicate_space.h"

namespace cvrepair {

namespace {

constexpr double kEps = 1e-9;

// Data-driven meaningful-predicate test (footnote 2 of the paper /
// DC discovery [7]): an insertable predicate must hold on a non-trivial
// fraction of tuple pairs that already agree on the constraint's equality
// predicates — otherwise it is key-like for the constraint's groups and
// would make the variant vacuous on the data.
class SupportEstimator {
 public:
  SupportEstimator(const Relation* data, int sample_size, double threshold)
      : data_(data), sample_size_(sample_size), threshold_(threshold) {}

  // True when the test is disabled or P has enough conditional support.
  bool Meaningful(const std::vector<AttrId>& eq_attrs, const Predicate& p) {
    if (data_ == nullptr) return true;
    const std::vector<std::pair<int, int>>& pairs = SampleFor(eq_attrs);
    if (pairs.empty()) return false;  // base already vacuous on the data
    int hits = 0;
    std::vector<int> rows(2);
    for (const auto& [i, j] : pairs) {
      rows[0] = i;
      rows[1] = j;
      if (p.Eval(*data_, rows)) ++hits;
    }
    return static_cast<double>(hits) / pairs.size() >= threshold_;
  }

 private:
  struct AttrVecHash {
    size_t operator()(const std::vector<AttrId>& v) const {
      size_t seed = v.size();
      for (AttrId a : v) seed = seed * 1000003 ^ static_cast<size_t>(a + 7);
      return seed;
    }
  };
  struct ValueVecHash {
    size_t operator()(const std::vector<Value>& vs) const {
      size_t seed = 0x5a5a;
      for (const Value& v : vs) seed = seed * 1000003 ^ v.Hash();
      return seed;
    }
  };

  const std::vector<std::pair<int, int>>& SampleFor(
      const std::vector<AttrId>& eq_attrs) {
    auto it = samples_.find(eq_attrs);
    if (it != samples_.end()) return it->second;
    std::vector<std::pair<int, int>> pairs;
    int n = data_->num_rows();
    if (eq_attrs.empty()) {
      // Unconditioned: deterministic strided pairs.
      int stride = std::max(1, n * n / std::max(sample_size_, 1) / 2);
      for (int i = 0; i < n && static_cast<int>(pairs.size()) < sample_size_;
           ++i) {
        for (int j = (i * 7 + 1) % n; j < n; j += stride + 1) {
          if (i != j) pairs.push_back({i, j});
          if (static_cast<int>(pairs.size()) >= sample_size_) break;
        }
      }
    } else {
      std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
          groups;
      for (int i = 0; i < n; ++i) {
        std::vector<Value> key;
        bool usable = true;
        for (AttrId a : eq_attrs) {
          const Value& v = data_->Get(i, a);
          if (v.is_null() || v.is_fresh()) {
            usable = false;
            break;
          }
          key.push_back(v);
        }
        if (usable) groups[std::move(key)].push_back(i);
      }
      for (const auto& [key, members] : groups) {
        (void)key;
        for (size_t a = 0; a + 1 < members.size(); ++a) {
          for (size_t b = a + 1; b < members.size(); ++b) {
            pairs.push_back({members[a], members[b]});
            pairs.push_back({members[b], members[a]});
            if (static_cast<int>(pairs.size()) >= sample_size_) break;
          }
          if (static_cast<int>(pairs.size()) >= sample_size_) break;
        }
        if (static_cast<int>(pairs.size()) >= sample_size_) break;
      }
    }
    return samples_.emplace(eq_attrs, std::move(pairs)).first->second;
  }

  const Relation* data_;
  int sample_size_;
  double threshold_;
  std::unordered_map<std::vector<AttrId>, std::vector<std::pair<int, int>>,
                     AttrVecHash>
      samples_;
};

// Cheapest valid insertion into `variant` from `cand` (operand pairs not
// already present); infinity when none remains.
double CheapestInsertion(const DenialConstraint& variant,
                         const DenialConstraint& base,
                         const std::vector<Predicate>& cand,
                         const VariationCostModel& model) {
  double best = std::numeric_limits<double>::infinity();
  for (const Predicate& p : cand) {
    if (variant.ContainsOperands(p)) continue;
    best = std::min(best, model.PredicateCost(p, base));
  }
  return best;
}

}  // namespace

std::vector<ConstraintVariant> GenerateConstraintVariants(
    const DenialConstraint& phi, const std::vector<Predicate>& space,
    const VariantGenOptions& options, double max_cost,
    VariantGenStats* stats) {
  std::vector<ConstraintVariant> out;
  const std::vector<Predicate>& preds = phi.predicates();
  const int m = static_cast<int>(preds.size());
  const VariationCostModel& model = options.cost_model;

  std::vector<double> del_cost(m);
  for (int i = 0; i < m; ++i) del_cost[i] = model.PredicateCost(preds[i], phi);

  SupportEstimator support(options.data, options.support_sample,
                           options.min_conditional_support);

  // Enumerate deletion subsets (keep at least one predicate).
  const int num_masks = 1 << m;
  for (int mask = 0; mask < num_masks; ++mask) {
    int deletions = __builtin_popcount(static_cast<unsigned>(mask));
    if (deletions > options.max_deletions_per_constraint || deletions >= m) {
      continue;  // too many deletions, or nothing would remain
    }

    double d_cost = 0.0;
    std::vector<Predicate> kept;
    std::vector<const Predicate*> deleted;
    for (int i = 0; i < m; ++i) {
      if (mask & (1 << i)) {
        d_cost += model.lambda * del_cost[i];
        deleted.push_back(&preds[i]);
      } else {
        kept.push_back(preds[i]);
      }
    }
    DenialConstraint base(kept, phi.name());

    // Insertion candidates: operand pairs not present in the reduced
    // constraint, not simply re-inserting a deleted predicate, matching
    // the constraint's tuple arity, and meaningful on the data.
    // The same grouping structure hash-partitioned violation detection
    // keys on (dc/predicate_space.h).
    std::vector<AttrId> eq_attrs = EqualityJoinAttrs(kept);
    std::vector<Predicate> cand;
    for (const Predicate& p : space) {
      if (p.MaxTupleVar() + 1 > phi.NumTupleVars()) continue;
      if (base.ContainsOperands(p)) continue;
      if (options.order_insertions_on_own_attrs_only &&
          (p.op() == Op::kLt || p.op() == Op::kGt)) {
        bool own = false;
        for (const Predicate& q : preds) {
          if (q.lhs().attr == p.lhs().attr ||
              (!q.has_constant() && q.rhs_cell().attr == p.lhs().attr)) {
            own = true;
            break;
          }
        }
        if (!own) continue;
      }
      bool reinsert = false;
      for (const Predicate* d : deleted) {
        if (*d == p) {
          reinsert = true;
          break;
        }
      }
      if (reinsert) continue;
      if (!support.Meaningful(eq_attrs, p)) continue;
      cand.push_back(p);
    }
    std::sort(cand.begin(), cand.end());

    // DFS over insertion subsets with cost pruning (all costs positive).
    std::vector<Predicate> chosen;
    auto emit = [&](double total_cost) {
      if (!options.allow_inequality_deletion) {
        // Every deleted non-equality predicate must be *strengthened*: an
        // inserted predicate on the same operands whose operator implies
        // the deleted one (<= -> <, != -> <, ... as in Example 4). This
        // rules out both free-standing consequent deletion and semantic
        // reversals such as != -> =.
        for (const Predicate* d : deleted) {
          if (d->op() == Op::kEq) continue;
          bool substituted = false;
          for (const Predicate& c : chosen) {
            if (c.SameOperands(*d) && Implies(c.op(), d->op())) {
              substituted = true;
              break;
            }
          }
          if (!substituted) return;
        }
      }
      std::vector<Predicate> all = kept;
      all.insert(all.end(), chosen.begin(), chosen.end());
      DenialConstraint variant(std::move(all), phi.name());
      if (variant.IsTrivial()) {
        if (stats) ++stats->pruned_trivial;
        return;
      }
      ConstraintVariant cv;
      cv.cost = total_cost;
      cv.num_insertions = static_cast<int>(chosen.size());
      cv.num_deletions = deletions;
      cv.cheapest_next_insertion =
          CheapestInsertion(variant, phi, cand, model);
      for (const Predicate* d : deleted) {
        bool substituted = false;
        for (const Predicate& c : chosen) {
          if (c.SameOperands(*d) && Implies(c.op(), d->op())) {
            substituted = true;
            break;
          }
        }
        if (!substituted) {
          cv.cheapest_deletion_undo =
              std::min(cv.cheapest_deletion_undo,
                       -model.lambda * model.PredicateCost(*d, phi));
        }
      }
      cv.constraint = std::move(variant);
      out.push_back(std::move(cv));
    };
    auto dfs = [&](auto&& self, size_t from, double cost) -> void {
      if (cost <= max_cost + kEps) emit(cost);
      if (static_cast<int>(chosen.size()) >=
          options.max_insertions_per_constraint) {
        return;
      }
      for (size_t i = from; i < cand.size(); ++i) {
        // Two inserted predicates on the same operands would contradict
        // (space operators are {<, >, =}) and trivialize the constraint.
        bool clash = false;
        for (const Predicate& c : chosen) {
          if (c.SameOperands(cand[i])) {
            clash = true;
            break;
          }
        }
        if (clash) continue;
        double c = model.PredicateCost(cand[i], phi);
        if (cost + c > max_cost + kEps) continue;
        chosen.push_back(cand[i]);
        self(self, i + 1, cost + c);
        chosen.pop_back();
      }
    };
    dfs(dfs, 0, d_cost);
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const ConstraintVariant& a, const ConstraintVariant& b) {
                     if (a.cost != b.cost) return a.cost < b.cost;
                     return a.constraint < b.constraint;
                   });
  if (stats) stats->per_constraint_variants += static_cast<int>(out.size());
  return out;
}

std::vector<SigmaVariant> GenerateSigmaVariants(const ConstraintSet& sigma,
                                                const Schema& schema,
                                                const VariantGenOptions& options,
                                                VariantGenStats* stats) {
  const int k = static_cast<int>(sigma.size());
  const VariationCostModel& model = options.cost_model;
  std::vector<Predicate> space = BuildPredicateSpace(schema, options.space);

  // Most negative achievable edit cost per constraint: delete the most
  // expensive predicates (bounded by the caps, always keeping one).
  std::vector<double> min_cost(k, 0.0);
  for (int i = 0; i < k; ++i) {
    std::vector<double> costs;
    for (const Predicate& p : sigma[i].predicates()) {
      // Only free-standing deletions contribute negative cost; restricted
      // non-equality deletions come with a paid substitution.
      if (!options.allow_inequality_deletion && p.op() != Op::kEq) continue;
      costs.push_back(model.PredicateCost(p, sigma[i]));
    }
    std::sort(costs.rbegin(), costs.rend());
    int deletable = std::min<int>(
        options.max_deletions_per_constraint,
        std::min<int>(static_cast<int>(costs.size()),
                      sigma[i].size() - 1));
    double sum = 0.0;
    for (int d = 0; d < deletable; ++d) sum += costs[d];
    min_cost[i] = model.lambda * sum;  // λ ≤ 0, so this is ≤ 0
  }
  std::vector<double> suffix_min(k + 1, 0.0);
  for (int i = k - 1; i >= 0; --i) suffix_min[i] = suffix_min[i + 1] + min_cost[i];

  // Per-constraint variant lists. Each constraint's own edit must fit the
  // tolerance (capped at max(θ, 0)): deletions elsewhere in Σ must not
  // subsidize extra insertions here — a cross-subsidized variant is
  // formally θ-maximal but pairs a wrecked constraint with an overfitted
  // one and only bloats the candidate set.
  std::vector<std::vector<ConstraintVariant>> phis(k);
  for (int i = 0; i < k; ++i) {
    double budget = std::min(options.theta - (suffix_min[0] - min_cost[i]),
                             std::max(options.theta, 0.0));
    phis[i] = GenerateConstraintVariants(sigma[i], space, options, budget,
                                         stats);
  }

  std::vector<SigmaVariant> out;
  if (options.always_include_original) {
    out.push_back({sigma, 0.0});
  }

  // Cross product with budget pruning (Φ_i sorted by ascending cost).
  std::vector<const ConstraintVariant*> pick(k);
  auto leaf = [&](double total) {
    if (stats) ++stats->sigma_enumerated;
    int changed = 0;
    for (int i = 0; i < k; ++i) {
      if (pick[i]->num_insertions + pick[i]->num_deletions > 0) ++changed;
    }
    if (changed == 0) return;  // the identity Σ is handled above

    if (options.prune_nonmaximal) {
      // θ-maximality (Section 3.1): if one more valid insertion fits the
      // budget and the structural caps, a refining variant with a repair
      // no worse (Lemma 1) is also enumerated — skip this one.
      for (int i = 0; i < k; ++i) {
        const ConstraintVariant& v = *pick[i];
        bool was_changed = v.num_insertions + v.num_deletions > 0;
        if (!was_changed && changed >= options.max_changed_constraints)
          continue;
        if (total + v.cheapest_deletion_undo <= options.theta + kEps) {
          if (stats) ++stats->pruned_nonmaximal;
          return;
        }
        if (v.num_insertions >= options.max_insertions_per_constraint)
          continue;
        if (total + v.cheapest_next_insertion <= options.theta + kEps) {
          if (stats) ++stats->pruned_nonmaximal;
          return;
        }
      }
    }
    SigmaVariant sv;
    sv.cost = total;
    sv.constraints.reserve(k);
    for (int i = 0; i < k; ++i) sv.constraints.push_back(pick[i]->constraint);
    out.push_back(std::move(sv));
  };

  bool capped = false;
  auto dfs = [&](auto&& self, int i, double cost, int changed) -> void {
    if (capped) return;
    if (static_cast<int>(out.size()) >= options.max_sigma_variants) {
      capped = true;
      return;
    }
    if (i == k) {
      if (cost <= options.theta + kEps) leaf(cost);
      return;
    }
    for (const ConstraintVariant& v : phis[i]) {
      bool is_change = v.num_insertions + v.num_deletions > 0;
      if (is_change && changed >= options.max_changed_constraints) continue;
      // Φ_i is cost-sorted: once even the cheapest completion overflows,
      // later variants of this constraint overflow too.
      if (cost + v.cost + suffix_min[i + 1] > options.theta + kEps) break;
      pick[i] = &v;
      self(self, i + 1, cost + v.cost, changed + (is_change ? 1 : 0));
      if (capped) return;
    }
  };
  dfs(dfs, 0, 0.0, 0);
  if (stats) stats->capped = capped;
  return out;
}

}  // namespace cvrepair
