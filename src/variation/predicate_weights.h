#ifndef CVREPAIR_VARIATION_PREDICATE_WEIGHTS_H_
#define CVREPAIR_VARIATION_PREDICATE_WEIGHTS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dc/constraint.h"
#include "dc/predicate.h"
#include "relation/relation.h"

namespace cvrepair {

/// Distribution-weighted predicate costs (Eq. 2 of the paper):
///
///   c(P) = |Pr(P) − Pr(φ)|
///
/// where Pr(P) is the proportion of tuple pairs satisfying P and Pr(φ) the
/// proportion of tuple pairs satisfying the constraint (i.e., not
/// violating it). A predicate whose satisfaction distribution coincides
/// with the constraint's is cheap to insert (high contribution) and
/// expensive to delete.
///
/// Probabilities are estimated on a fixed sample of ordered tuple pairs
/// (deterministic given `seed`), so building the table is O(sample) per
/// predicate/constraint instead of O(|I|²).
class PredicateWeights {
 public:
  /// Samples up to `max_pairs` ordered pairs of distinct rows of `I` (all
  /// pairs if |I|·(|I|−1) is smaller).
  explicit PredicateWeights(const Relation& I, int max_pairs = 20000,
                            uint64_t seed = 0x5eed);

  /// Estimated Pr(P) over the pair sample (for single-tuple predicates the
  /// row sample is used).
  double PrPredicate(const Predicate& p) const;

  /// Estimated Pr(φ): fraction of sampled tuple lists satisfying φ.
  double PrConstraint(const DenialConstraint& phi) const;

  /// |Pr(P) − Pr(φ)| (Eq. 2).
  double Cost(const Predicate& p, const DenialConstraint& phi) const;

  int num_sampled_pairs() const { return static_cast<int>(pairs_.size()); }

 private:
  const Relation* I_;
  std::vector<std::pair<int, int>> pairs_;
  mutable std::map<Predicate, double> pred_memo_;
  mutable std::map<std::vector<Predicate>, double> constraint_memo_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_VARIATION_PREDICATE_WEIGHTS_H_
