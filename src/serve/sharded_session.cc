#include "serve/sharded_session.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <set>
#include <utility>

#include "dc/predicate_space.h"
#include "relation/domain_stats.h"
#include "solver/materialized_cache.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

/// Cached "serve." counter handles (handles are stable for the process
/// lifetime; ResetAll only zeroes values).
struct ServeCounters {
  MetricCounter* batches_applied;
  MetricCounter* shard_local_components;
  MetricCounter* cross_shard_components;
  MetricCounter* rows_migrated;
  MetricCounter* cells_changed;

  static const ServeCounters& Get() {
    static ServeCounters c = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      ServeCounters out;
      out.batches_applied = r.GetCounter("serve.batches_applied");
      out.shard_local_components = r.GetCounter("serve.shard_local_components");
      out.cross_shard_components = r.GetCounter("serve.cross_shard_components");
      out.rows_migrated = r.GetCounter("serve.rows_migrated");
      out.cells_changed = r.GetCounter("serve.cells_changed");
      return out;
    }();
    return c;
  }
};

/// FNV-1a over the shard-key values of a row. Deliberately not Value::Hash
/// or std::hash: the shard a row lands in decides which index detects its
/// violations, and the serve CI baselines pin exact per-shard counts, so
/// the hash must be identical across standard libraries and platforms.
/// Numerics hash their canonical double bit pattern (Int 5 and Double 5.0
/// satisfy the same equality predicates, so they must share a shard; -0.0
/// is folded into +0.0 for the same reason); strings hash their bytes.
uint64_t HashKeyValue(uint64_t h, const Value& v) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  auto mix_byte = [&](unsigned char b) {
    h ^= b;
    h *= kPrime;
  };
  if (v.is_numeric()) {
    mix_byte('n');
    double d = v.numeric();
    if (d == 0.0) d = 0.0;  // fold -0.0
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &d, sizeof(double));
    for (unsigned char b : bytes) mix_byte(b);
  } else {
    mix_byte('s');
    for (char c : v.ToString()) mix_byte(static_cast<unsigned char>(c));
  }
  return h;
}

/// A tombstoned (deleted) row: every cell NULL — what the delete and
/// hybrid repair strategies leave behind (repair/subset.h). Such a row
/// satisfies no predicate, so no index can ever implicate it in a
/// violation again; its shard placement is irrelevant for detection.
bool IsTombstone(const Relation& I, int row) {
  for (AttrId a = 0; a < I.num_attributes(); ++a) {
    if (!I.Get(row, a).is_null()) return false;
  }
  return true;
}

/// Deterministic union-find over a dense universe.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

ShardPlan PlanShards(const ConstraintSet& variant) {
  ShardPlan plan;
  // Candidate keys: every two-tuple constraint's non-empty equality-join
  // attribute set, plus each of its single-attribute subsets (a smaller key
  // can cover constraints whose full sets differ but intersect).
  std::set<std::vector<AttrId>> candidates;
  std::vector<std::vector<AttrId>> eq_sets(variant.size());
  for (size_t k = 0; k < variant.size(); ++k) {
    if (variant[k].NumTupleVars() < 2) continue;
    eq_sets[k] = EqualityJoinAttrs(variant[k].predicates());
    if (eq_sets[k].empty()) continue;
    candidates.insert(eq_sets[k]);
    for (AttrId a : eq_sets[k]) candidates.insert({a});
  }
  // Winner: localizes the most two-tuple constraints (its attributes are a
  // subset of the constraint's equality-join set); ties prefer fewer key
  // attributes, then the lexicographically smaller set — all deterministic.
  int best_score = 0;
  for (const std::vector<AttrId>& key : candidates) {
    int score = 0;
    for (size_t k = 0; k < variant.size(); ++k) {
      if (variant[k].NumTupleVars() < 2) continue;
      if (std::includes(eq_sets[k].begin(), eq_sets[k].end(), key.begin(),
                        key.end())) {
        ++score;
      }
    }
    const bool wins =
        score > best_score ||
        (score == best_score && score > 0 &&
         (key.size() < plan.key.size() ||
          (key.size() == plan.key.size() && key < plan.key)));
    if (wins) {
      best_score = score;
      plan.key = key;
    }
  }
  for (size_t k = 0; k < variant.size(); ++k) {
    const bool is_local =
        variant[k].NumTupleVars() < 2 ||
        (!plan.key.empty() &&
         std::includes(eq_sets[k].begin(), eq_sets[k].end(), plan.key.begin(),
                       plan.key.end()));
    (is_local ? plan.local : plan.straddling).push_back(static_cast<int>(k));
  }
  return plan;
}

ShardedSession::ShardedSession(const Relation& I, const ConstraintSet& sigma,
                               const ShardedOptions& options)
    : options_(options) {
  TraceSpan span("serve/session_build");
  options_.num_shards = std::max(1, options_.num_shards);
  RepairResult initial = CVTolerantRepair(I, sigma, options_.repair);
  variant_ = initial.satisfied_constraints;
  initial_stats_ = initial.stats;
  // Continue fresh ids above any the initial repair minted, so streamed
  // fixes never alias an existing fv — identical to StreamingRepairer.
  for (int r = 0; r < initial.repaired.num_rows(); ++r) {
    for (AttrId a = 0; a < initial.repaired.num_attributes(); ++a) {
      const Value& v = initial.repaired.Get(r, a);
      if (v.is_fresh()) {
        fresh_counter_ = std::max(fresh_counter_, v.fresh_id() + 1);
      }
    }
  }

  plan_ = PlanShards(variant_);
  ConstraintSet straddling_sigma;
  for (int k : plan_.local) local_sigma_.push_back(variant_[k]);
  for (int k : plan_.straddling) straddling_sigma.push_back(variant_[k]);
  span.AddArg("shards", static_cast<int64_t>(options_.num_shards));
  span.AddArg("local_constraints", static_cast<int64_t>(plan_.local.size()));

  global_ = std::make_unique<ViolationIndex>(initial.repaired, straddling_sigma,
                                             options_.repair.use_encoded);
  home_.resize(static_cast<size_t>(initial.repaired.num_rows()));
  for (int r = 0; r < initial.repaired.num_rows(); ++r) {
    home_[static_cast<size_t>(r)] = TargetShard(r);
  }
  BuildShards();
}

int ShardedSession::TargetShard(int row) const {
  const int num_shards = options_.num_shards;
  if (num_shards <= 1) return 0;
  if (!plan_.key.empty()) {
    uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    bool concrete = true;
    for (AttrId a : plan_.key) {
      const Value& v = global_->relation().Get(row, a);
      if (v.is_null() || v.is_fresh()) {
        concrete = false;
        break;
      }
      h = HashKeyValue(h, v);
    }
    if (concrete) return static_cast<int>(h % static_cast<uint64_t>(num_shards));
  }
  return row % num_shards;
}

void ShardedSession::BuildShards() {
  shards_.clear();
  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) RebuildShard(s);
}

void ShardedSession::RebuildShard(int s) {
  Shard& shard = shards_[static_cast<size_t>(s)];
  if (shard.index != nullptr) {
    retired_rechecked_.fetch_add(shard.index->rows_rechecked(),
                                 std::memory_order_relaxed);
  }
  shard.rows.clear();
  shard.local_of.clear();
  const Relation& master = global_->relation();
  Relation sub(master.schema());
  for (int r = 0; r < master.num_rows(); ++r) {
    if (home_[static_cast<size_t>(r)] != s) continue;
    shard.local_of.emplace(r, static_cast<int>(shard.rows.size()));
    shard.rows.push_back(r);
    sub.AddRow(master.row(r));
  }
  shard.index = std::make_unique<ViolationIndex>(sub, local_sigma_,
                                                 options_.repair.use_encoded);
}

bool ShardedSession::IsViolationFree() {
  if (global_->HasViolations()) return false;
  for (Shard& shard : shards_) {
    if (shard.index->HasViolations()) return false;
  }
  return true;
}

std::vector<Violation> ShardedSession::CollectViolations() {
  std::vector<Violation> out;
  for (Violation& v : global_->CurrentViolations()) {
    v.constraint_index = plan_.straddling[static_cast<size_t>(
        v.constraint_index)];
    out.push_back(std::move(v));
  }
  for (Shard& shard : shards_) {
    for (Violation& v : shard.index->CurrentViolations()) {
      v.constraint_index =
          plan_.local[static_cast<size_t>(v.constraint_index)];
      for (int& row : v.rows) row = shard.rows[static_cast<size_t>(row)];
      out.push_back(std::move(v));
    }
  }
  CanonicalizeViolations(&out);
  return out;
}

ServeBatchResult ShardedSession::ApplyBatch(const std::vector<RowEdit>& edits) {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("serve/apply_batch");
  span.AddArg("edits", static_cast<int64_t>(edits.size()));

  ServeBatchResult out;
  out.edits = static_cast<int>(edits.size());
  const int num_shards = options_.num_shards;
  auto rechecked_now = [&]() {
    int64_t total = global_->rows_rechecked() +
                    retired_rechecked_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) total += shard.index->rows_rechecked();
    return total;
  };
  const int64_t rechecked_before = rechecked_now();

  // Phase 1 — the master copy (and the residual straddling detection)
  // absorbs the raw batch. Routing decisions below read post-batch values,
  // so a mid-batch shard-key edit can never leave detection running
  // against a stale home.
  const int old_rows = global_->relation().num_rows();
  std::vector<int> touched = global_->ApplyBatch(edits);
  out.rows_touched = static_cast<int>(touched.size());

  // Phase 2 — re-home: inserted rows pick their shard, and existing rows
  // whose key cells now hash elsewhere migrate. A migration invalidates
  // the source shard's sub-relation (ViolationIndex has no row removal),
  // so both endpoints rebuild from the master copy; plain inserts append
  // through the shard index's own insert path instead.
  home_.resize(static_cast<size_t>(global_->relation().num_rows()), -1);
  std::vector<char> rebuild(static_cast<size_t>(num_shards), 0);
  std::vector<std::vector<int>> joiners(static_cast<size_t>(num_shards));
  for (int r : touched) {
    const int target = TargetShard(r);
    if (r >= old_rows) {
      home_[static_cast<size_t>(r)] = target;
      joiners[static_cast<size_t>(target)].push_back(r);
      continue;
    }
    if (home_[static_cast<size_t>(r)] != target &&
        !IsTombstone(global_->relation(), r)) {
      rebuild[static_cast<size_t>(home_[static_cast<size_t>(r)])] = 1;
      rebuild[static_cast<size_t>(target)] = 1;
      home_[static_cast<size_t>(r)] = target;
      ++out.rows_migrated;
    }
  }

  // Phase 3 — each shard absorbs its slice independently (a thread-pool
  // slice each; the master copy is read-only here). Synthesized per-shard
  // edits carry the post-batch master values, so repeated edits of one
  // cell collapse and shard state converges to the master's regardless of
  // in-batch ordering.
  ThreadPool::ParallelFor(
      num_shards,
      [&](int64_t si) {
        const int s = static_cast<int>(si);
        if (rebuild[static_cast<size_t>(s)] != 0) {
          RebuildShard(s);
          return;
        }
        Shard& shard = shards_[static_cast<size_t>(s)];
        const Relation& master = global_->relation();
        std::vector<RowEdit> shard_edits;
        for (int r : joiners[static_cast<size_t>(s)]) {
          shard.local_of.emplace(r, static_cast<int>(shard.rows.size()));
          shard.rows.push_back(r);
          shard_edits.push_back(RowEdit::Insert(master.row(r)));
        }
        for (int r : touched) {
          if (r >= old_rows || home_[static_cast<size_t>(r)] != s) continue;
          const int local = shard.local_of.at(r);
          for (AttrId a = 0; a < master.num_attributes(); ++a) {
            const Value& now = master.Get(r, a);
            if (shard.index->relation().Get(local, a) == now) continue;
            shard_edits.push_back(RowEdit::Update(local, a, now));
          }
        }
        if (!shard_edits.empty()) shard.index->ApplyBatch(shard_edits);
      },
      options_.repair.threads);

  // Phase 4 — union the shard-local and residual violations and classify
  // the violation-graph components: one whose rows span two homes pays a
  // cross-shard merge before the solve sees it.
  std::vector<Violation> violations = CollectViolations();
  out.violations = static_cast<int>(violations.size());

  if (!violations.empty()) {
    {
      std::vector<int> rows;
      for (const Violation& v : violations) {
        rows.insert(rows.end(), v.rows.begin(), v.rows.end());
      }
      std::sort(rows.begin(), rows.end());
      rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      auto dense = [&](int row) {
        return static_cast<int>(std::lower_bound(rows.begin(), rows.end(),
                                                 row) -
                                rows.begin());
      };
      UnionFind uf(static_cast<int>(rows.size()));
      for (const Violation& v : violations) {
        for (size_t i = 1; i < v.rows.size(); ++i) {
          uf.Union(dense(v.rows[0]), dense(v.rows[i]));
        }
      }
      // root -> (first home seen, straddles?)
      std::unordered_map<int, std::pair<int, bool>> comp;
      for (size_t i = 0; i < rows.size(); ++i) {
        const int root = uf.Find(static_cast<int>(i));
        const int h = home_[static_cast<size_t>(rows[i])];
        auto [it, inserted] = comp.try_emplace(root, h, false);
        if (!inserted && it->second.first != h) it->second.second = true;
      }
      for (const auto& [root, info] : comp) {
        if (info.second) {
          ++out.cross_shard_components;
        } else {
          ++out.shard_local_components;
        }
      }
    }

    // Phase 5 — the identical component re-solve StreamingRepairer runs:
    // global instance, per-batch domain stats, cold per-batch cache, the
    // session's fresh counter. Bit-identity with the single-session replay
    // follows from the violation sets being equal (the shard partition is
    // sound and complete for the local constraints).
    const Relation& W = global_->relation();
    DomainStats stats_of_W(W);
    RepairStats batch_stats;
    MaterializedCache cold_cache;
    std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
        W, stats_of_W, variant_, std::move(violations), options_.repair,
        &cold_cache, &batch_stats, &fresh_counter_, global_->encoded());
    // delta_min defaults to +inf, so the scoped solve cannot abort.
    assert(fix.has_value());
    out.components = fix->components;
    out.repair_cost = fix->cost;

    // Phase 6 — write the fixes back through every index owning the row,
    // then re-home rows whose shard-key cells the fixes rewrote.
    std::vector<int> fixed_rows;
    for (auto& [cell, value] : fix->assignments) {
      if (global_->relation().Get(cell) == value) continue;
      ++out.cells_changed;
      fixed_rows.push_back(cell.row);
      const int s = home_[static_cast<size_t>(cell.row)];
      Shard& shard = shards_[static_cast<size_t>(s)];
      shard.index->ApplyChange(
          Cell{shard.local_of.at(cell.row), cell.attr}, value);
      global_->ApplyChange(cell, std::move(value));
    }
    std::sort(fixed_rows.begin(), fixed_rows.end());
    fixed_rows.erase(std::unique(fixed_rows.begin(), fixed_rows.end()),
                     fixed_rows.end());
    std::vector<char> refresh(static_cast<size_t>(num_shards), 0);
    bool any_refresh = false;
    for (int r : fixed_rows) {
      // A fix that tombstoned the row retired it in place: the per-index
      // write-backs above already cleared its violations, and the all-NULL
      // row can never join another one. Re-homing it to the round-robin
      // fallback its NULL key now hashes to would rebuild two shards —
      // retiring every index's incremental state — to move a row of
      // NULLs, and under the delete strategy nearly every batch deletes.
      // The route table keeps the shard it died in.
      if (IsTombstone(global_->relation(), r)) continue;
      const int target = TargetShard(r);
      if (home_[static_cast<size_t>(r)] == target) continue;
      refresh[static_cast<size_t>(home_[static_cast<size_t>(r)])] = 1;
      refresh[static_cast<size_t>(target)] = 1;
      home_[static_cast<size_t>(r)] = target;
      ++out.rows_migrated;
      any_refresh = true;
    }
    if (any_refresh) {
      for (int s = 0; s < num_shards; ++s) {
        if (refresh[static_cast<size_t>(s)] != 0) RebuildShard(s);
      }
    }
    // Every live violation had a covering cell assigned a changed value,
    // and the per-index write-backs retired it.
    assert(IsViolationFree());
  }

  out.rows_rechecked = rechecked_now() - rechecked_before;
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  span.AddArg("components", out.components);
  span.AddArg("cross_shard", out.cross_shard_components);

  totals_.batches += 1;
  totals_.edits += out.edits;
  totals_.components += out.components;
  totals_.shard_local_components += out.shard_local_components;
  totals_.cross_shard_components += out.cross_shard_components;
  totals_.cells_changed += out.cells_changed;
  totals_.rows_migrated += out.rows_migrated;
  totals_.rows_rechecked += out.rows_rechecked;
  totals_.repair_cost += out.repair_cost;

  const ServeCounters& c = ServeCounters::Get();
  c.batches_applied->Increment();
  c.shard_local_components->Add(out.shard_local_components);
  c.cross_shard_components->Add(out.cross_shard_components);
  c.rows_migrated->Add(out.rows_migrated);
  c.cells_changed->Add(out.cells_changed);
  return out;
}

}  // namespace cvrepair
