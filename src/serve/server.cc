#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/metrics.h"

namespace cvrepair {

namespace {

struct AdmissionCounters {
  MetricCounter* batches_admitted;
  MetricCounter* batches_rejected;
  MetricCounter* sessions_opened;

  static const AdmissionCounters& Get() {
    static AdmissionCounters c = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      AdmissionCounters out;
      out.batches_admitted = r.GetCounter("serve.batches_admitted");
      out.batches_rejected = r.GetCounter("serve.batches_rejected");
      out.sessions_opened = r.GetCounter("serve.sessions_opened");
      return out;
    }();
    return c;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ServeSession

ServeSession::ServeSession(std::string name, const Relation& I,
                           const ConstraintSet& sigma,
                           const ServeOptions& options)
    : name_(std::move(name)),
      admission_([&] {
        AdmissionOptions a = options.admission;
        a.queue_watermark = std::max(1, a.queue_watermark);
        return a;
      }()),
      session_(I, sigma, options.session) {
  AdmissionCounters::Get().sessions_opened->Increment();
  if (admission_.background) StartWorker();
}

ServeSession::~ServeSession() {
  StopWorker();
  Flush();  // admitted batches are a promise, even on teardown
}

SubmitOutcome ServeSession::Submit(std::vector<RowEdit> edits) {
  SubmitOutcome out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(queue_.size()) >= admission_.queue_watermark) {
      ++rejected_;
      out.retry_after_seconds = admission_.retry_after_seconds;
      out.queue_depth = static_cast<int>(queue_.size());
      AdmissionCounters::Get().batches_rejected->Increment();
      return out;
    }
    queue_.push_back(std::move(edits));
    out.admitted = true;
    out.ticket = admitted_++;
    out.queue_depth = static_cast<int>(queue_.size());
  }
  AdmissionCounters::Get().batches_admitted->Increment();
  queue_cv_.notify_one();
  return out;
}

int ServeSession::Pump() {
  // apply_mu_ serializes drainers: batches pop and apply one at a time, so
  // the engine always sees them in ticket order.
  std::lock_guard<std::mutex> apply_lock(apply_mu_);
  std::vector<RowEdit> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return 0;
    batch = std::move(queue_.front());
    queue_.pop_front();
  }
  ServeBatchResult result = session_.ApplyBatch(batch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++applied_;
    batch_seconds_.push_back(result.elapsed_seconds);
  }
  return 1;
}

int ServeSession::Flush() {
  int applied = 0;
  while (Pump() > 0) ++applied;
  return applied;
}

int ServeSession::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int64_t ServeSession::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t ServeSession::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

int64_t ServeSession::applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

std::vector<double> ServeSession::batch_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_seconds_;
}

void ServeSession::StartWorker() {
  worker_ = std::thread([this] { WorkerLoop(); });
}

void ServeSession::StopWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void ServeSession::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // the closer flushes what is left
    }
    Pump();
  }
}

// ---------------------------------------------------------------------------
// RepairServer

RepairServer::RepairServer(ServeOptions defaults)
    : defaults_(std::move(defaults)) {}

RepairServer::~RepairServer() = default;  // ~ServeSession flushes

ServeSession* RepairServer::Open(const std::string& name, const Relation& I,
                                 const ConstraintSet& sigma) {
  return Open(name, I, sigma, defaults_);
}

ServeSession* RepairServer::Open(const std::string& name, const Relation& I,
                                 const ConstraintSet& sigma,
                                 const ServeOptions& options) {
  // The session's initial repair runs outside the map lock — opening a
  // large dataset must not stall Submit/Find traffic on other sessions.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(name) > 0) return nullptr;
  }
  auto session = std::make_unique<ServeSession>(name, I, sigma, options);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(name, std::move(session));
  return inserted ? it->second.get() : nullptr;
}

ServeSession* RepairServer::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::optional<Relation> RepairServer::Close(const std::string& name) {
  std::unique_ptr<ServeSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) return std::nullopt;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->StopWorker();
  session->Flush();  // accepted batches survive the close
  return session->repair().current();
}

int RepairServer::FlushAll() {
  std::vector<ServeSession*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, session] : sessions_) sessions.push_back(session.get());
  }
  int applied = 0;
  for (ServeSession* s : sessions) applied += s->Flush();
  return applied;
}

std::vector<std::string> RepairServer::SessionNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

}  // namespace cvrepair
