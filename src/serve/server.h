#ifndef CVREPAIR_SERVE_SERVER_H_
#define CVREPAIR_SERVE_SERVER_H_

// Repair-as-a-service front end (DESIGN.md §13): a RepairServer hosts
// named dataset sessions, each wrapping a ShardedSession behind a bounded
// request queue with admission control. Submit is the client edge — it
// either enqueues a batch (admitted, with a monotone ticket) or rejects it
// with a retry-after hint once the queue depth reaches the watermark
// (backpressure; nothing is dropped silently). Accepted batches are
// applied strictly in ticket order, either synchronously (Pump/Flush — the
// deterministic mode the CI gate and the load generator's metrics sections
// drive) or by an optional background worker thread. Closing a session
// flushes every accepted batch before the session is destroyed, so
// admission is a promise: admitted edits are always applied.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/sharded_session.h"

namespace cvrepair {

/// Admission-control policy of one session's request queue.
struct AdmissionOptions {
  /// Submit rejects while this many batches are already pending. Clamped
  /// to >= 1: a session that can never admit is useless.
  int queue_watermark = 8;
  /// Retry hint handed to rejected clients (seconds). Purely advisory —
  /// the closed-loop load generator sleeps it off, the tests ignore it.
  double retry_after_seconds = 0.05;
  /// Drain the queue from a background worker thread instead of relying
  /// on explicit Pump/Flush calls. Application order is still ticket
  /// order, so the repaired instance is identical either way; admission
  /// outcomes become timing-dependent, which is why the deterministic CI
  /// scenarios leave this off.
  bool background = false;
};

/// Per-session configuration: the sharded engine plus the admission edge.
struct ServeOptions {
  ShardedOptions session;
  AdmissionOptions admission;
};

/// What a client learns from one Submit call.
struct SubmitOutcome {
  bool admitted = false;
  /// Position in the session's admitted sequence (-1 when rejected).
  int64_t ticket = -1;
  /// Advisory backoff for rejected submissions, 0 when admitted.
  double retry_after_seconds = 0.0;
  /// Pending batches after this call (the rejected batch not included).
  int queue_depth = 0;
};

/// One named dataset session: a ShardedSession fed by a bounded queue.
/// Thread-safe: any number of client threads may Submit while one drainer
/// (Pump/Flush caller or the background worker) applies.
class ServeSession {
 public:
  ServeSession(std::string name, const Relation& I, const ConstraintSet& sigma,
               const ServeOptions& options);
  ~ServeSession();

  const std::string& name() const { return name_; }

  /// Admission edge: enqueues the batch unless the queue is at the
  /// watermark. Never blocks on repair work.
  SubmitOutcome Submit(std::vector<RowEdit> edits);

  /// Applies the oldest pending batch, if any. Returns batches applied
  /// (0 or 1).
  int Pump();

  /// Applies every pending batch. Returns batches applied.
  int Flush();

  /// Pending batches right now.
  int depth() const;
  int64_t admitted() const;
  int64_t rejected() const;
  int64_t applied() const;

  /// Wall-clock seconds of each applied batch, in ticket order — the
  /// latency sample the load generator's p50/p99 report reads.
  std::vector<double> batch_seconds() const;

  /// The engine. Safe to read between Pump/Flush calls in synchronous
  /// mode; with a background worker, only after StopWorker/Close.
  const ShardedSession& repair() const { return session_; }

 private:
  friend class RepairServer;
  void StartWorker();
  void StopWorker();
  void WorkerLoop();

  const std::string name_;
  const AdmissionOptions admission_;
  ShardedSession session_;

  mutable std::mutex mu_;  // queue, counters, latency sample
  std::condition_variable queue_cv_;
  std::deque<std::vector<RowEdit>> queue_;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t applied_ = 0;
  std::vector<double> batch_seconds_;

  std::mutex apply_mu_;  // serializes applies, preserving ticket order
  std::thread worker_;
  bool stopping_ = false;  // guarded by mu_
};

/// The daemon: owns named sessions, applies per-server default options,
/// and guarantees the close-flushes-accepted-batches contract.
class RepairServer {
 public:
  explicit RepairServer(ServeOptions defaults = {});
  ~RepairServer();

  /// Opens (and returns) a named session over (I, Σ) with the server's
  /// default options. Fails (nullptr) if the name is taken.
  ServeSession* Open(const std::string& name, const Relation& I,
                     const ConstraintSet& sigma);
  ServeSession* Open(const std::string& name, const Relation& I,
                     const ConstraintSet& sigma, const ServeOptions& options);

  /// The named session, or nullptr.
  ServeSession* Find(const std::string& name);

  /// Flushes every accepted batch of the named session, destroys it, and
  /// returns its final repaired instance (std::nullopt for unknown names).
  std::optional<Relation> Close(const std::string& name);

  /// Drains every session's queue. Returns batches applied.
  int FlushAll();

  std::vector<std::string> SessionNames() const;

 private:
  ServeOptions defaults_;
  mutable std::mutex mu_;  // the session map
  std::map<std::string, std::unique_ptr<ServeSession>> sessions_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_SERVE_SERVER_H_
