#ifndef CVREPAIR_SERVE_SHARDED_SESSION_H_
#define CVREPAIR_SERVE_SHARDED_SESSION_H_

// Hash-sharded streaming repair session (DESIGN.md §13). One up-front
// θ-tolerant repair freezes Σ'; afterwards the relation is hash-partitioned
// on the best-covering equality-join attribute set of Σ', and every shard
// owns a ViolationIndex over just its rows and the constraints whose
// violations are provably shard-local (two rows can only violate such a
// constraint if they agree — concretely — on every shard-key attribute,
// which puts them in the same shard). Constraints the key does not cover
// are delta-checked by a single residual index over the global instance,
// which doubles as the authoritative master copy. Per batch, the shard
// indexes re-check their touched rows independently (a thread-pool slice
// each); the union of shard-local and residual violations is canonicalized
// and fed to the identical component re-solve a single-session
// StreamingRepairer runs, so the result is bit-identical — the serve tests
// pin this cell-for-cell, fresh ids included. Conflict components whose
// rows straddle shards are counted as cross-shard merges
// (serve.cross_shard_components); components contained in one shard are
// serve.shard_local_components.

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dc/incremental.h"
#include "repair/cvtolerant.h"

namespace cvrepair {

/// The sharding plan derived from a frozen variant Σ': the hash key and the
/// split of Σ' into shard-local and straddling constraints.
struct ShardPlan {
  /// Attributes whose (concrete) values route a row to its shard. Empty =
  /// no equality-join key covers any two-tuple constraint; rows are then
  /// round-robin-partitioned by row id and only single-tuple constraints
  /// are shard-local.
  std::vector<AttrId> key;
  /// Indices into Σ' of the shard-local constraints: single-tuple ones,
  /// plus every two-tuple constraint whose equality-join attribute set
  /// contains `key` (when `key` is non-empty).
  std::vector<int> local;
  /// Indices into Σ' of the constraints the residual global index checks.
  std::vector<int> straddling;
};

/// Derives the sharding plan of a variant: candidate keys are the non-empty
/// equality-join attribute sets of Σ''s two-tuple constraints plus their
/// single-attribute subsets; the winner localizes the most two-tuple
/// constraints (ties: fewer attributes, then lexicographic). Deterministic.
ShardPlan PlanShards(const ConstraintSet& variant);

/// Options of a ShardedSession.
struct ShardedOptions {
  /// Engine knobs of the initial repair and every per-batch re-solve —
  /// identical in role to StreamingOptions::repair.
  CVTolerantOptions repair;
  /// Number of hash shards (clamped to >= 1). 1 degenerates to an
  /// unsharded session and is the equivalence baseline of the fuzz tests.
  int num_shards = 1;
};

/// Outcome of one ShardedSession::ApplyBatch call.
struct ServeBatchResult {
  int edits = 0;
  int rows_touched = 0;   ///< distinct rows the edits touched
  int violations = 0;     ///< shard-local + residual violations detected
  int components = 0;     ///< dirty components re-solved
  int cells_changed = 0;  ///< cells whose stored value actually changed
  /// Violation-graph components (violations linked by shared rows) whose
  /// rows all live in one shard vs. the ones paying a cross-shard merge.
  int shard_local_components = 0;
  int cross_shard_components = 0;
  /// Rows whose shard-key cells changed to values hashing elsewhere; their
  /// source and destination shards were rebuilt from the master copy.
  int rows_migrated = 0;
  /// Row re-scans this batch, summed over the shard and residual indexes.
  int64_t rows_rechecked = 0;
  double repair_cost = 0.0;
  double elapsed_seconds = 0.0;
};

/// Cumulative counters over a session; mirrored into the MetricsRegistry
/// under the "serve." prefix (work counters, CI-gated).
struct ServeTotals {
  int64_t batches = 0;
  int64_t edits = 0;
  int64_t components = 0;
  int64_t shard_local_components = 0;
  int64_t cross_shard_components = 0;
  int64_t cells_changed = 0;
  int64_t rows_migrated = 0;
  int64_t rows_rechecked = 0;
  double repair_cost = 0.0;
};

/// A sharded equivalent of StreamingRepairer: same frozen-variant contract
/// (violation-free after every batch, bit-identical to a from-scratch
/// component repair of the accumulated instance), but detection is
/// partitioned across shard-owned ViolationIndexes. Σ' stays frozen for
/// the session's lifetime — re-opening the variant search would change the
/// equality-join sets under the shard plan.
class ShardedSession {
 public:
  ShardedSession(const Relation& I, const ConstraintSet& sigma,
                 const ShardedOptions& options = {});

  /// The maintained instance: violation-free under variant() after
  /// construction and after every ApplyBatch.
  const Relation& current() const { return global_->relation(); }
  const ConstraintSet& variant() const { return variant_; }
  const RepairStats& initial_stats() const { return initial_stats_; }
  const ShardPlan& plan() const { return plan_; }
  const ServeTotals& totals() const { return totals_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard currently owning `row`. Tombstoned rows (deleted by the
  /// delete/hybrid strategy: all cells NULL) keep the home they died in —
  /// they satisfy no predicate, so their placement is irrelevant for
  /// detection, and migrating them to the round-robin slot their NULL key
  /// falls back to would rebuild two shard indexes per deletion.
  int HomeOf(int row) const { return home_[static_cast<size_t>(row)]; }
  /// True iff every shard index and the residual index are violation-free.
  bool IsViolationFree();

  /// Ingests one batch: applies the edits to the master copy, re-homes
  /// rows whose shard-key cells changed (rebuilding the affected shards),
  /// delta-re-checks the touched rows of every shard independently, and
  /// re-solves the dirty components of the unioned violation set under the
  /// frozen variant. Bit-identical to StreamingRepairer::ApplyBatch on the
  /// same edit sequence, at any thread count and shard count.
  ServeBatchResult ApplyBatch(const std::vector<RowEdit>& edits);

 private:
  struct Shard {
    std::vector<int> rows;                    // local row -> global row
    std::unordered_map<int, int> local_of;    // global row -> local row
    std::unique_ptr<ViolationIndex> index;    // over (sub-relation, local Σ')
  };

  /// The shard `row` hashes to under the master copy's current values.
  /// Rows whose key holds a NULL or fresh value satisfy no equality
  /// predicate — they cannot join a shard-local two-tuple violation — so
  /// they fall back to the (stable) round-robin slot.
  int TargetShard(int row) const;
  void BuildShards();
  void RebuildShard(int s);
  /// Collects the current shard-local + residual violations, remapped to
  /// global rows and Σ' constraint indices, in canonical order.
  std::vector<Violation> CollectViolations();

  ShardedOptions options_;
  ConstraintSet variant_;
  RepairStats initial_stats_;
  ShardPlan plan_;
  ConstraintSet local_sigma_;  // variant_[plan_.local], in order
  /// Master copy + residual detection in one object: a ViolationIndex over
  /// the global instance and the straddling constraints (possibly none).
  /// Its working copy and coded mirror are the authoritative inputs of the
  /// per-batch component re-solve.
  std::unique_ptr<ViolationIndex> global_;
  std::vector<Shard> shards_;
  std::vector<int> home_;  // row -> owning shard
  /// rows_rechecked of shard indexes retired by rebuilds — keeps the
  /// session-wide recheck count monotone across rebuilds. Atomic because
  /// rebuilds run on the phase-3 thread-pool slice; the value is a sum, so
  /// it is thread-count invariant.
  std::atomic<int64_t> retired_rechecked_{0};
  int64_t fresh_counter_ = 1;  // continues past the initial repair's ids
  ServeTotals totals_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_SERVE_SHARDED_SESSION_H_
