#ifndef CVREPAIR_DATA_CENSUS_H_
#define CVREPAIR_DATA_CENSUS_H_

#include <cstdint>

#include "dc/constraint.h"
#include "dc/predicate_space.h"
#include "relation/relation.h"

namespace cvrepair {

/// Configuration for the synthetic CENSUS generator (the numerical
/// dataset of the evaluation: 40 attributes, 3 DCs over values such as
/// Income and Tax).
struct CensusConfig {
  int num_rows = 400;
  int num_attributes = 40;  ///< >= 8; the first 8 are the core attributes
  /// Income below this pays no tax (creates the zero-tax ties that make
  /// the oversimplified "Tax <= Tax" DC overrepair, Example 4).
  double tax_threshold = 40000.0;
  double tax_rate = 0.2;
  uint64_t seed = 2;
};

/// Attribute indexes of the CENSUS schema.
struct CensusAttrs {
  static constexpr AttrId kAge = 0;
  static constexpr AttrId kEducation = 1;
  static constexpr AttrId kHours = 2;
  static constexpr AttrId kIncome = 3;
  static constexpr AttrId kTax = 4;
  static constexpr AttrId kWeeklyWage = 5;
  static constexpr AttrId kMonthlyWage = 6;
  static constexpr AttrId kCapitalGain = 7;
  // Attributes 8.. are filler (F8, F9, ...).
};

/// Generated CENSUS data with its constraint variants.
struct CensusData {
  Relation clean;
  /// Precise DCs holding on `clean`:
  ///   d1: not(t0.Income>t1.Income & t0.Tax<t1.Tax)     (progressive tax)
  ///   d2: not(t0.WeeklyWage>t1.WeeklyWage & t0.MonthlyWage<t1.MonthlyWage)
  ///   d3: not(t0.Tax>t0.Income)                        (single-tuple)
  ConstraintSet precise;
  /// Given (imprecise) DCs of the evaluation:
  ///   d1': Tax "<=" instead of "<"  — oversimplified; flags the zero-tax
  ///        band (fixed by the order substitution of Example 4),
  ///   d2': MonthlyWage "!=" instead of "<" — oversimplified; "<" refines
  ///        "!=" (the numerical-order refinement of contribution (2)),
  ///   d3 unchanged.
  ConstraintSet given;
  PredicateSpaceOptions space;
  /// Numeric attributes the noise generator targets.
  std::vector<AttrId> noise_attrs;
};

/// Builds a clean CENSUS instance plus constraint sets. Deterministic
/// given config.seed.
CensusData MakeCensus(const CensusConfig& config = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_CENSUS_H_
