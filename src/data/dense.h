#ifndef CVREPAIR_DATA_DENSE_H_
#define CVREPAIR_DATA_DENSE_H_

#include <cstdint>
#include <vector>

#include "dc/constraint.h"
#include "relation/relation.h"

namespace cvrepair {

/// Configuration for the DENSE generator: an adversarial high-error
/// workload whose conflict hypergraph collapses into one giant component
/// per track. Each track is a monotone sensor ramp carved into two
/// half-phase-shifted agreement windows; order DCs hold per window, so a
/// locally perturbed reading only conflicts inside its windows — the
/// repair-context components form a chain of overlapping window cliques
/// (banded, articulation-rich) instead of one global clique. This is the
/// stress shape the topology-aware decomposition of DESIGN.md §12 targets.
struct DenseConfig {
  int num_tracks = 2;
  int rows_per_track = 240;
  /// Rows per agreement window. The two window attributes are offset by
  /// window/2, so any two rows at most window/2 apart share a window.
  int window = 12;
  double step = 10.0;     ///< clean Reading increment per Seq
  /// Noise magnitude cap in units of `step`. Must stay <= window/2 so a
  /// perturbed reading only inverts order against rows it shares a window
  /// with (keeping every injected error a real violation).
  double max_band = 3.0;
  double error_rate = 0.3;  ///< per-row perturbation probability
  uint64_t seed = 7;
};

/// Attribute indexes of the DENSE schema.
struct DenseAttrs {
  static constexpr AttrId kTrack = 0;
  static constexpr AttrId kSeq = 1;
  static constexpr AttrId kWinA = 2;
  static constexpr AttrId kWinB = 3;
  static constexpr AttrId kReading = 4;
};

/// Generated DENSE data. Unlike the other generators, noise is injected
/// here rather than by data/noise.h: the global-range numeric noise of
/// InjectNoise turns every perturbed row into a conflict with the whole
/// track (a clique no topology can split); the adversarial shape needs
/// *local* +-band perturbations.
struct DenseData {
  Relation clean;
  Relation dirty;  ///< clean + local band noise at config.error_rate
  /// Order DCs holding on `clean`, one per window attribute:
  ///   dA: not(t0.WinA=t1.WinA & t0.Seq<t1.Seq & t0.Reading>t1.Reading)
  ///   dB: not(t0.WinB=t1.WinB & t0.Seq<t1.Seq & t0.Reading>t1.Reading)
  ConstraintSet sigma;
  std::vector<AttrId> noise_attrs;  ///< {kReading}
  int num_errors = 0;               ///< rows perturbed in `dirty`
};

/// Builds the DENSE workload. Deterministic given config.seed.
DenseData MakeDense(const DenseConfig& config = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_DENSE_H_
