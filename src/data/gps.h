#ifndef CVREPAIR_DATA_GPS_H_
#define CVREPAIR_DATA_GPS_H_

#include <cstdint>

#include "dc/constraint.h"
#include "dc/violation.h"
#include "relation/relation.h"

namespace cvrepair {

/// Configuration for the GPS trajectory generator. The paper's GPS test
/// walks a campus with a smartphone: readings occasionally "jump" off the
/// trajectory (243 dirty points of 2409). We reproduce that shape with a
/// random walk plus injected jumps of known ground truth (the
/// hardware-bound substitution documented in DESIGN.md).
struct GpsConfig {
  int num_points = 800;
  /// Fraction of points displaced off the trajectory.
  double jump_fraction = 0.10;
  /// Maximum legitimate per-step displacement; the constraints bound
  /// steps by a slightly looser limit.
  double max_step = 8.0;
  double step_limit = 15.0;    ///< the DC bound on StepX/StepY
  double jump_min = 60.0;
  double jump_max = 150.0;
  uint64_t seed = 3;
};

/// Generated GPS data.
struct GpsData {
  /// Schema: Seq(int,key), X, Y, StepX, StepY (doubles), Quality(int 0/1).
  /// StepX/StepY are the per-reading displacements the DCs constrain.
  Relation clean;
  Relation dirty;
  CellSet dirty_cells;
  /// Precise DCs: |StepX| <= step_limit and |StepY| <= step_limit
  /// (four single-tuple linear DCs).
  ConstraintSet precise;
  /// Given (overrefined) DCs: each bound carries an excessive
  /// "Quality = 0" predicate, so jumps recorded with Quality = 1 escape
  /// detection. Deleting the Quality predicates (negative θ) restores the
  /// precise rules — the predicate-deletion use case on real-error data
  /// (Figure 15).
  ConstraintSet given;
  /// Attributes metrics should evaluate (StepX, StepY).
  std::vector<AttrId> eval_attrs;
};

/// Builds clean + dirty GPS trajectories. Deterministic given config.seed.
GpsData MakeGps(const GpsConfig& config = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_GPS_H_
