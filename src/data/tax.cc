#include "data/tax.h"

#include <cmath>
#include <random>

namespace cvrepair {

TaxData MakeTax(const TaxConfig& config) {
  std::mt19937_64 rng(config.seed);

  TaxData data;
  Schema schema;
  schema.AddAttribute("Id", AttrType::kInt, /*is_key=*/true);
  schema.AddAttribute("Name", AttrType::kString);
  schema.AddAttribute("AreaCode", AttrType::kString);
  schema.AddAttribute("State", AttrType::kString);
  schema.AddAttribute("Zip", AttrType::kString);
  schema.AddAttribute("Marital", AttrType::kString);
  schema.AddAttribute("Dependents", AttrType::kInt);
  schema.AddAttribute("Salary", AttrType::kDouble);
  schema.AddAttribute("Rate", AttrType::kDouble);
  schema.AddAttribute("Tax", AttrType::kDouble);

  // State entities: rate, area codes and zips functional per state.
  std::vector<double> rate(config.num_states);
  for (int s = 0; s < config.num_states; ++s) rate[s] = 2.0 + s * 0.75;

  Relation rel(schema);
  std::uniform_int_distribution<int> state_pick(0, config.num_states - 1);
  std::uniform_int_distribution<int> name_pick(0, 39);
  std::uniform_int_distribution<int> variant_pick(0, 2);
  std::uniform_int_distribution<int> deps_pick(0, 3);
  std::uniform_real_distribution<double> salary_pick(8000.0, 90000.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < config.num_rows; ++i) {
    int s = state_pick(rng);
    bool single = coin(rng) < 0.5;
    int dependents = deps_pick(rng);
    double salary = std::floor(salary_pick(rng));
    // Low-income singles are exempt regardless of dependents; everyone
    // else pays the state rate.
    double tax = (single && salary < config.exemption)
                     ? 0.0
                     : std::floor(salary * rate[s] / 100.0);
    rel.AddRow({Value::Int(i),
                Value::String("P" + std::to_string(name_pick(rng))),
                Value::String("AC" + std::to_string(s) + "_" +
                              std::to_string(variant_pick(rng))),
                Value::String("ST" + std::to_string(s)),
                Value::String("Z" + std::to_string(s) + "_" +
                              std::to_string(variant_pick(rng))),
                Value::String(single ? "S" : "M"), Value::Int(dependents),
                Value::Double(salary), Value::Double(rate[s]),
                Value::Double(tax)});
  }
  data.clean = std::move(rel);

  const AttrId kAc = TaxAttrs::kAreaCode;
  const AttrId kState = TaxAttrs::kState;
  const AttrId kZip = TaxAttrs::kZip;
  const AttrId kMarital = TaxAttrs::kMarital;
  const AttrId kDeps = TaxAttrs::kDependents;
  const AttrId kSalary = TaxAttrs::kSalary;
  const AttrId kRate = TaxAttrs::kRate;
  const AttrId kTax = TaxAttrs::kTax;

  DenialConstraint f1 = DenialConstraint::FromFd({kAc}, kState, "fd_ac_state");
  DenialConstraint f2 = DenialConstraint::FromFd({kZip}, kState, "fd_zip_state");
  DenialConstraint c1(
      {Predicate::TwoCell(0, kState, Op::kEq, 1, kState),
       Predicate::TwoCell(0, kRate, Op::kNeq, 1, kRate)},
      "cfd_state_rate");
  DenialConstraint c2(
      {Predicate::WithConstant(0, kSalary, Op::kLt,
                               Value::Double(config.exemption)),
       Predicate::WithConstant(0, kMarital, Op::kEq, Value::String("S")),
       Predicate::WithConstant(0, kTax, Op::kGt, Value::Double(0))},
      "ccfd_exemption");
  DenialConstraint c3(
      {Predicate::TwoCell(0, kTax, Op::kGt, 0, kSalary)}, "dc_tax_le_salary");

  data.precise = {f1, f2, c1, c2, c3};

  // Given rules: the two CFD-shaped rules arrive overrefined — c1 gains a
  // Name= join that fragments the state groups to near-singletons (rate
  // errors become invisible), c2 gains a Dependents=0 guard (exempt
  // singles with dependents escape). Deleting those predicates (negative
  // θ) restores the precise rules; note the constant predicate on
  // Dependents.
  DenialConstraint g3 = c1.WithPredicate(
      Predicate::TwoCell(0, TaxAttrs::kName, Op::kEq, 1, TaxAttrs::kName));
  g3.set_name("cfd_state_rate_overrefined");
  DenialConstraint g4 = c2.WithPredicate(
      Predicate::WithConstant(0, kDeps, Op::kEq, Value::Int(0)));
  g4.set_name("ccfd_exemption_overrefined");
  data.given = {f1, f2, g3, g4, c3};

  data.space.excluded_attrs = {TaxAttrs::kName, TaxAttrs::kSalary,
                               TaxAttrs::kTax};
  data.noise_attrs = {kState, kRate, kTax};
  return data;
}

}  // namespace cvrepair
