#ifndef CVREPAIR_DATA_HOSP_H_
#define CVREPAIR_DATA_HOSP_H_

#include <cstdint>

#include "dc/constraint.h"
#include "dc/predicate_space.h"
#include "relation/relation.h"

namespace cvrepair {

/// Configuration for the synthetic HOSP generator (the categorical
/// dataset of the paper's evaluation: 14 attributes, FD-style rules).
struct HospConfig {
  /// Distinct hospitals; each contributes `measures_per_hospital` rows, so
  /// |I| ≈ num_hospitals · measures_per_hospital.
  int num_hospitals = 60;
  int measures_per_hospital = 8;
  /// Fraction of hospitals that share their name with another hospital in
  /// a different city (national chains) — these make Name→Phone
  /// oversimplified.
  double chain_fraction = 0.30;
  /// Fraction sharing name *and* city but not address (campuses).
  double campus_fraction = 0.15;
  int num_measures = 24;
  int num_conditions = 4;
  /// Schema width, 8..14; attributes beyond the first
  /// `num_attributes` are dropped (Figure 19 sweeps this).
  int num_attributes = 14;
  uint64_t seed = 1;
};

/// Generated HOSP data with its constraint variants.
struct HospData {
  Relation clean;
  /// Precise FDs that hold on `clean` (ground-truth rules).
  ConstraintSet precise;
  /// The evaluation's *given* constraints: one oversimplified FD
  /// (HospitalName → Phone; the truth needs Address) and, when the schema
  /// is wide enough, a second (HospitalName → EmergencyService), plus
  /// precise FDs. Used by Figures 5, 6, 9-11, 14, 17-19.
  ConstraintSet given_oversimplified;
  /// Overrefined given constraints: precise FDs burdened with an
  /// excessive measure-level attribute (e.g., MeasureCode,Sample →
  /// MeasureName), which overfit the data and miss errors. Used by the
  /// negative-θ experiment (Figure 16).
  ConstraintSet given_overrefined;
  /// Recommended insertable-predicate space (row-unique measure values
  /// Sample/Score are excluded, cf. meaningful predicates [7]).
  PredicateSpaceOptions space;
  /// Attributes the noise generator should target (the consequents of the
  /// rules: Phone, MeasureName, City, State, EmergencyService).
  std::vector<AttrId> noise_attrs;
};

/// Attribute indexes of the HOSP schema (valid up to num_attributes).
struct HospAttrs {
  static constexpr AttrId kHospitalName = 0;
  static constexpr AttrId kAddress = 1;
  static constexpr AttrId kCity = 2;
  static constexpr AttrId kPhone = 3;
  static constexpr AttrId kMeasureCode = 4;
  static constexpr AttrId kMeasureName = 5;
  static constexpr AttrId kCondition = 6;
  static constexpr AttrId kSample = 7;
  static constexpr AttrId kScore = 8;
  static constexpr AttrId kZipCode = 9;
  static constexpr AttrId kState = 10;
  static constexpr AttrId kCounty = 11;
  static constexpr AttrId kEmergency = 12;
  static constexpr AttrId kProviderId = 13;
};

/// Builds a clean HOSP instance together with precise / oversimplified /
/// overrefined constraint sets. Deterministic given config.seed.
HospData MakeHosp(const HospConfig& config = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_HOSP_H_
