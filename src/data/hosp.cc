#include "data/hosp.h"

#include <algorithm>
#include <cassert>
#include <random>
#include <string>
#include <vector>

namespace cvrepair {

namespace {

struct Hospital {
  std::string name;
  std::string address;
  int city = 0;
  std::string phone;
  std::string emergency;
};

}  // namespace

HospData MakeHosp(const HospConfig& config) {
  assert(config.num_attributes >= 8 && config.num_attributes <= 14);
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  HospData data;

  // --- Schema (first num_attributes of the 14). ---
  Schema schema;
  const AttrType kStr = AttrType::kString;
  std::vector<std::pair<std::string, AttrType>> defs = {
      {"HospitalName", kStr}, {"Address", kStr},     {"City", kStr},
      {"Phone", kStr},        {"MeasureCode", kStr}, {"MeasureName", kStr},
      {"Condition", kStr},    {"Sample", AttrType::kInt},
      {"Score", AttrType::kInt},
      {"ZipCode", kStr},      {"State", kStr},       {"County", kStr},
      {"EmergencyService", kStr}, {"ProviderID", AttrType::kInt}};
  for (int a = 0; a < config.num_attributes; ++a) {
    schema.AddAttribute(defs[a].first, defs[a].second,
                        defs[a].first == "ProviderID");
  }
  const int na = config.num_attributes;
  auto has = [na](AttrId a) { return a < na; };

  // --- Entities: cities (city -> state/county/zips is functional). ---
  int num_cities = std::max(4, config.num_hospitals / 3);
  int num_states = std::max(2, num_cities / 4);
  std::vector<std::string> city_name(num_cities), city_state(num_cities),
      city_county(num_cities);
  std::vector<std::vector<std::string>> city_zips(num_cities);
  for (int c = 0; c < num_cities; ++c) {
    city_name[c] = "City" + std::to_string(c);
    city_state[c] = "ST" + std::to_string(c % num_states);
    city_county[c] = "County" + std::to_string(c / 2);
    city_zips[c] = {"Z" + std::to_string(c) + "A",
                    "Z" + std::to_string(c) + "B"};
  }

  // --- Measures: code -> (name, condition) is functional. ---
  std::vector<std::string> m_code(config.num_measures),
      m_name(config.num_measures), m_cond(config.num_measures);
  for (int m = 0; m < config.num_measures; ++m) {
    m_code[m] = "MC" + std::to_string(m);
    m_name[m] = "Measure_" + std::to_string(m);
    m_cond[m] = "Cond" + std::to_string(m % config.num_conditions);
  }

  // --- Hospitals: chains share a name across cities, campuses share a
  // name within a city; (name, address) is unique. ---
  std::vector<Hospital> hospitals(config.num_hospitals);
  for (int h = 0; h < config.num_hospitals; ++h) {
    Hospital& hosp = hospitals[h];
    hosp.address = std::to_string(100 + h) + " Main St";
    hosp.phone = "555-" + std::to_string(1000 + h);
    hosp.emergency = (h % 3 == 0) ? "No" : "Yes";
    if (h > 0 && coin(rng) < config.chain_fraction) {
      // Chain: reuse the previous hospital's name, different city.
      hosp.name = hospitals[h - 1].name;
      hosp.city = (hospitals[h - 1].city + 1 + h % (num_cities - 1)) %
                  num_cities;
    } else if (h > 0 && coin(rng) < config.campus_fraction) {
      // Campus: same name and city, different address (already unique).
      hosp.name = hospitals[h - 1].name;
      hosp.city = hospitals[h - 1].city;
    } else {
      hosp.name = "Hospital_" + std::to_string(h);
      hosp.city = h % num_cities;
    }
  }

  // --- Rows: each hospital reports measures_per_hospital measures. ---
  Relation rel(schema);
  std::uniform_int_distribution<int> sample_dist(10, 499);
  std::uniform_int_distribution<int> score_dist(0, 100);
  int provider = 10000;
  for (int h = 0; h < config.num_hospitals; ++h) {
    const Hospital& hosp = hospitals[h];
    std::vector<int> measures(config.num_measures);
    for (int m = 0; m < config.num_measures; ++m) measures[m] = m;
    std::shuffle(measures.begin(), measures.end(), rng);
    int count = std::min(config.measures_per_hospital, config.num_measures);
    const std::string& zip =
        city_zips[hosp.city][h % city_zips[hosp.city].size()];
    for (int k = 0; k < count; ++k) {
      int m = measures[k];
      std::vector<Value> row;
      row.reserve(na);
      row.push_back(Value::String(hosp.name));
      row.push_back(Value::String(hosp.address));
      row.push_back(Value::String(city_name[hosp.city]));
      row.push_back(Value::String(hosp.phone));
      row.push_back(Value::String(m_code[m]));
      row.push_back(Value::String(m_name[m]));
      row.push_back(Value::String(m_cond[m]));
      row.push_back(Value::Int(sample_dist(rng)));
      if (has(HospAttrs::kScore)) row.push_back(Value::Int(score_dist(rng)));
      if (has(HospAttrs::kZipCode)) row.push_back(Value::String(zip));
      if (has(HospAttrs::kState)) {
        row.push_back(Value::String(city_state[hosp.city]));
      }
      if (has(HospAttrs::kCounty)) {
        row.push_back(Value::String(city_county[hosp.city]));
      }
      if (has(HospAttrs::kEmergency)) {
        row.push_back(Value::String(hosp.emergency));
      }
      if (has(HospAttrs::kProviderId)) row.push_back(Value::Int(provider++));
      rel.AddRow(std::move(row));
    }
  }
  data.clean = std::move(rel);

  // --- Constraint sets. ---
  const AttrId kName = HospAttrs::kHospitalName;
  const AttrId kAddr = HospAttrs::kAddress;
  const AttrId kCity = HospAttrs::kCity;
  const AttrId kPhone = HospAttrs::kPhone;
  const AttrId kCode = HospAttrs::kMeasureCode;
  const AttrId kMName = HospAttrs::kMeasureName;
  const AttrId kCond = HospAttrs::kCondition;

  // Precise rules that hold on the clean instance.
  data.precise.push_back(
      DenialConstraint::FromFd({kName, kAddr}, kPhone, "fd_phone"));
  data.precise.push_back(DenialConstraint::FromFd({kCode}, kMName, "fd_mname"));
  data.precise.push_back(DenialConstraint::FromFd({kCode}, kCond, "fd_cond"));
  data.precise.push_back(
      DenialConstraint::FromFd({kName, kAddr}, kCity, "fd_city"));
  if (has(HospAttrs::kState)) {
    data.precise.push_back(DenialConstraint::FromFd(
        {HospAttrs::kZipCode}, HospAttrs::kState, "fd_state"));
  }
  if (has(HospAttrs::kEmergency)) {
    data.precise.push_back(DenialConstraint::FromFd(
        {kName, kAddr}, HospAttrs::kEmergency, "fd_es"));
  }

  // Given set A: oversimplified fd_phone (Address missing) + precise rest.
  data.given_oversimplified.push_back(
      DenialConstraint::FromFd({kName}, kPhone, "fd_phone_oversimplified"));
  for (size_t i = 1; i < data.precise.size(); ++i) {
    data.given_oversimplified.push_back(data.precise[i]);
  }

  // Given set B: overrefined rules. Each imprecise rule pairs one
  // *sufficient* key attribute with one *excessive* row-level attribute
  // (Address alone identifies a hospital; MeasureCode/Sample/Score vary
  // within the rule's groups): deleting the excessive predicate restores
  // the precise rule and exposes the noise, while deleting the needed
  // predicate wrecks the rule with a visibly huge repair — the binary
  // structure the negative-θ experiment of Appendix D.2 sweeps over.
  data.given_overrefined.push_back(DenialConstraint::FromFd(
      {kAddr, kCode}, kPhone, "fd_phone_overrefined"));
  data.given_overrefined.push_back(DenialConstraint::FromFd(
      {kCode, HospAttrs::kSample}, kMName, "fd_mname_overrefined"));
  if (has(HospAttrs::kEmergency) && has(HospAttrs::kScore)) {
    data.given_overrefined.push_back(DenialConstraint::FromFd(
        {kAddr, HospAttrs::kScore}, HospAttrs::kEmergency,
        "fd_es_overrefined"));
  }
  data.given_overrefined.push_back(
      DenialConstraint::FromFd({kAddr}, kCity, "fd_city_min"));
  if (has(HospAttrs::kState)) {
    data.given_overrefined.push_back(DenialConstraint::FromFd(
        {HospAttrs::kZipCode}, HospAttrs::kState, "fd_state"));
  }
  data.given_overrefined.push_back(
      DenialConstraint::FromFd({kCode}, kCond, "fd_cond"));

  // Insertable space: measure-level per-row values are key-like and
  // excluded up front (the support test would reject them anyway).
  data.space.excluded_attrs = {HospAttrs::kSample};
  if (has(HospAttrs::kScore)) {
    data.space.excluded_attrs.push_back(HospAttrs::kScore);
  }

  data.noise_attrs = {kPhone, kMName, kCity};
  if (has(HospAttrs::kState)) data.noise_attrs.push_back(HospAttrs::kState);
  if (has(HospAttrs::kEmergency)) {
    data.noise_attrs.push_back(HospAttrs::kEmergency);
  }
  return data;
}

}  // namespace cvrepair
