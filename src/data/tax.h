#ifndef CVREPAIR_DATA_TAX_H_
#define CVREPAIR_DATA_TAX_H_

#include <cstdint>

#include "dc/constraint.h"
#include "dc/predicate_space.h"
#include "relation/relation.h"

namespace cvrepair {

/// Configuration for the synthetic TAX generator — the classic
/// data-cleaning workload (person records with state-dependent tax rules)
/// used here to exercise *constant* predicates: conditional rules of the
/// CFD flavor that denial constraints express with constants
/// (Section 6 of the paper).
struct TaxConfig {
  int num_rows = 300;
  int num_states = 8;
  /// Singles below this salary pay no state tax in any state.
  double exemption = 20000.0;
  uint64_t seed = 5;
};

/// Attribute indexes of the TAX schema.
struct TaxAttrs {
  static constexpr AttrId kId = 0;        // int, key
  static constexpr AttrId kName = 1;      // string
  static constexpr AttrId kAreaCode = 2;  // string
  static constexpr AttrId kState = 3;     // string
  static constexpr AttrId kZip = 4;       // string
  static constexpr AttrId kMarital = 5;   // string: "S" or "M"
  static constexpr AttrId kDependents = 6;  // int
  static constexpr AttrId kSalary = 7;    // double
  static constexpr AttrId kRate = 8;      // double, state tax rate in %
  static constexpr AttrId kTax = 9;       // double
};

/// Generated TAX data with its constraint variants.
struct TaxData {
  Relation clean;
  /// Precise rules holding on `clean`:
  ///   f1: AreaCode -> State                 (FD)
  ///   f2: Zip -> State                      (FD)
  ///   c1: not(t0.State = t1.State & t0.Rate != t1.Rate)
  ///       (state determines the rate — a variable CFD shape)
  ///   c2: not(t0.Salary < exemption & t0.Marital = 'S' & t0.Tax > 0)
  ///       (constant CFD: low-income singles pay no tax)
  ///   c3: not(t0.Tax > t0.Salary)           (single-tuple sanity)
  ConstraintSet precise;
  /// Given (imprecise) rules: c2 arrives *oversimplified* without the
  /// marital-status condition (it wrongly denies tax for low-income
  /// married filers too); the rest are precise. The θ-tolerant fix must
  /// touch a constraint with constants — the CFD case.
  ConstraintSet given;
  PredicateSpaceOptions space;
  std::vector<AttrId> noise_attrs;
};

/// Builds a clean TAX instance plus constraint sets. Deterministic given
/// config.seed.
TaxData MakeTax(const TaxConfig& config = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_TAX_H_
