#include "data/dense.h"

#include <cassert>
#include <cmath>
#include <random>
#include <utility>

namespace cvrepair {

DenseData MakeDense(const DenseConfig& config) {
  assert(config.window >= 2);
  assert(config.max_band * 2.0 <= static_cast<double>(config.window));
  std::mt19937_64 rng(config.seed);

  DenseData data;
  Schema schema;
  schema.AddAttribute("Track", AttrType::kInt);
  schema.AddAttribute("Seq", AttrType::kInt);
  schema.AddAttribute("WinA", AttrType::kInt);
  schema.AddAttribute("WinB", AttrType::kInt);
  schema.AddAttribute("Reading", AttrType::kDouble);

  const int half = config.window / 2;
  Relation clean(schema);
  for (int t = 0; t < config.num_tracks; ++t) {
    for (int i = 0; i < config.rows_per_track; ++i) {
      // Window ids are namespaced per track, so the DCs never compare
      // rows of different tracks; WinB is phase-shifted by half a window.
      int win_a = t * 100000 + i / config.window;
      int win_b = t * 100000 + 50000 + (i + half) / config.window;
      std::vector<Value> row;
      row.reserve(5);
      row.push_back(Value::Int(t));
      row.push_back(Value::Int(i));
      row.push_back(Value::Int(win_a));
      row.push_back(Value::Int(win_b));
      row.push_back(Value::Double(config.step * i));
      clean.AddRow(std::move(row));
    }
  }

  // Local band noise: a perturbed Reading moves by 1..max_band steps, so
  // it inverts order against at most max_band ramp neighbors — all of
  // which share one of its windows (max_band <= window/2). Injected here
  // so the perturbation stays local; see DenseData.
  Relation dirty = clean;
  std::bernoulli_distribution hit(config.error_rate);
  std::uniform_real_distribution<double> band(1.0, config.max_band);
  std::bernoulli_distribution up(0.5);
  for (int r = 0; r < dirty.num_rows(); ++r) {
    if (!hit(rng)) continue;
    double delta = std::floor(band(rng) * config.step);
    if (!up(rng)) delta = -delta;
    double reading = dirty.Get(r, DenseAttrs::kReading).as_double() + delta;
    dirty.SetValue(r, DenseAttrs::kReading, Value::Double(reading));
    ++data.num_errors;
  }
  data.clean = std::move(clean);
  data.dirty = std::move(dirty);

  const AttrId kSeq = DenseAttrs::kSeq;
  const AttrId kReading = DenseAttrs::kReading;
  data.sigma.push_back(DenialConstraint(
      {Predicate::TwoCell(0, DenseAttrs::kWinA, Op::kEq, 1, DenseAttrs::kWinA),
       Predicate::TwoCell(0, kSeq, Op::kLt, 1, kSeq),
       Predicate::TwoCell(0, kReading, Op::kGt, 1, kReading)},
      "dc_window_a"));
  data.sigma.push_back(DenialConstraint(
      {Predicate::TwoCell(0, DenseAttrs::kWinB, Op::kEq, 1, DenseAttrs::kWinB),
       Predicate::TwoCell(0, kSeq, Op::kLt, 1, kSeq),
       Predicate::TwoCell(0, kReading, Op::kGt, 1, kReading)},
      "dc_window_b"));

  data.noise_attrs = {kReading};
  return data;
}

}  // namespace cvrepair
