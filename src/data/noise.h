#ifndef CVREPAIR_DATA_NOISE_H_
#define CVREPAIR_DATA_NOISE_H_

#include <cstdint>
#include <vector>

#include "dc/violation.h"
#include "relation/relation.h"

namespace cvrepair {

/// Error-injection configuration (Appendix D.1: "errors are introduced in
/// the datasets by producing noises with a certain error rate e — e% of
/// cells in the data are changed").
struct NoiseConfig {
  /// Fraction of target cells corrupted.
  double error_rate = 0.05;
  /// Attributes eligible for corruption; empty = all non-key attributes.
  std::vector<AttrId> target_attrs;
  /// Correlated errors (Section 5.4): number of errors placed together in
  /// each dirty tuple. 1 = independent cell errors.
  int errors_per_tuple = 1;
  /// For categorical cells: probability that the corrupted value is
  /// swapped with another active-domain value (otherwise a typo — a value
  /// outside the domain, like the masked digits of Figure 1).
  double swap_probability = 0.6;
  /// Relative magnitude of numeric perturbations (fraction of the
  /// attribute's range).
  double numeric_magnitude = 0.5;
  uint64_t seed = 42;
};

/// A corrupted instance with its ground truth.
struct NoisyData {
  Relation dirty;
  /// Cells whose value was changed (the `truth` set of Appendix D.1).
  CellSet dirty_cells;
};

/// Corrupts `clean` per `config`. Deterministic given the seed. The number
/// of corrupted cells is round(error_rate · |rows| · |target_attrs|),
/// grouped errors_per_tuple-at-a-time into the same tuples.
NoisyData InjectNoise(const Relation& clean, const NoiseConfig& config);

}  // namespace cvrepair

#endif  // CVREPAIR_DATA_NOISE_H_
