#include "data/noise.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "relation/domain_stats.h"

namespace cvrepair {

NoisyData InjectNoise(const Relation& clean, const NoiseConfig& config) {
  NoisyData out;
  out.dirty = clean;
  std::mt19937_64 rng(config.seed);

  std::vector<AttrId> targets = config.target_attrs;
  if (targets.empty()) {
    for (AttrId a = 0; a < clean.num_attributes(); ++a) {
      if (!clean.schema().is_key(a)) targets.push_back(a);
    }
  }
  if (targets.empty() || clean.num_rows() == 0) return out;

  DomainStats stats(clean);
  int64_t total_cells =
      static_cast<int64_t>(clean.num_rows()) * targets.size();
  int budget = static_cast<int>(std::llround(config.error_rate * total_cells));
  int per_tuple = std::max(1, config.errors_per_tuple);

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> row_pick(0, clean.num_rows() - 1);
  int typo_counter = 1;

  auto corrupt_cell = [&](int row, AttrId attr) -> bool {
    Cell cell{row, attr};
    if (out.dirty_cells.count(cell)) return false;
    const Value& cur = out.dirty.Get(cell);
    if (cur.is_null() || cur.is_fresh()) return false;
    const AttrStats& as = stats.attr(attr);
    Value corrupted;
    if (clean.schema().is_numeric(attr)) {
      if (coin(rng) < config.swap_probability && as.frequencies.size() > 1) {
        // Swap with another domain value.
        std::uniform_int_distribution<size_t> pick(0, as.frequencies.size() - 1);
        for (int tries = 0; tries < 8; ++tries) {
          const Value& v = as.frequencies[pick(rng)].first;
          if (!(v == cur)) {
            corrupted = v;
            break;
          }
        }
        if (corrupted.is_null()) return false;
      } else {
        double range = as.has_numeric_range ? std::max(as.range(), 1.0) : 1.0;
        std::uniform_real_distribution<double> mag(0.2, 1.0);
        double delta = mag(rng) * config.numeric_magnitude * range;
        if (coin(rng) < 0.5) delta = -delta;
        double v = cur.numeric() + delta;
        corrupted = clean.schema().type(attr) == AttrType::kInt
                        ? Value::Int(static_cast<int64_t>(std::llround(v)))
                        : Value::Double(v);
        if (corrupted == cur) return false;
      }
    } else {
      if (coin(rng) < config.swap_probability && as.frequencies.size() > 1) {
        std::uniform_int_distribution<size_t> pick(0, as.frequencies.size() - 1);
        for (int tries = 0; tries < 8; ++tries) {
          const Value& v = as.frequencies[pick(rng)].first;
          if (!(v == cur)) {
            corrupted = v;
            break;
          }
        }
        if (corrupted.is_null()) return false;
      } else {
        // Typo: a value outside the active domain (cf. the hidden digits
        // "***-389" in Figure 1 of the paper).
        corrupted =
            Value::String(cur.ToString() + "#e" + std::to_string(typo_counter++));
      }
    }
    out.dirty.SetValue(cell, std::move(corrupted));
    out.dirty_cells.insert(cell);
    return true;
  };

  int injected = 0;
  int attempts = 0;
  const int max_attempts = budget * 50 + 1000;
  while (injected < budget && attempts < max_attempts) {
    ++attempts;
    int row = row_pick(rng);
    // Correlated mode: place `per_tuple` errors in this tuple on distinct
    // target attributes.
    std::vector<AttrId> shuffled = targets;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    int placed = 0;
    for (AttrId a : shuffled) {
      if (placed >= per_tuple || injected >= budget) break;
      if (corrupt_cell(row, a)) {
        ++placed;
        ++injected;
      }
    }
  }
  return out;
}

}  // namespace cvrepair
