#include "data/census.h"

#include <cassert>
#include <cmath>
#include <random>

namespace cvrepair {

CensusData MakeCensus(const CensusConfig& config) {
  assert(config.num_attributes >= 8);
  std::mt19937_64 rng(config.seed);

  CensusData data;
  Schema schema;
  schema.AddAttribute("Age", AttrType::kInt);
  schema.AddAttribute("Education", AttrType::kInt);
  schema.AddAttribute("Hours", AttrType::kInt);
  schema.AddAttribute("Income", AttrType::kDouble);
  schema.AddAttribute("Tax", AttrType::kDouble);
  schema.AddAttribute("WeeklyWage", AttrType::kDouble);
  schema.AddAttribute("MonthlyWage", AttrType::kDouble);
  schema.AddAttribute("CapitalGain", AttrType::kDouble);
  for (int a = 8; a < config.num_attributes; ++a) {
    if (a % 2 == 0) {
      schema.AddAttribute("F" + std::to_string(a), AttrType::kInt);
    } else {
      schema.AddAttribute("F" + std::to_string(a), AttrType::kString);
    }
  }

  Relation rel(schema);
  std::uniform_int_distribution<int> age_dist(18, 70);
  std::uniform_int_distribution<int> edu_dist(1, 16);
  std::uniform_int_distribution<int> hours_dist(20, 60);
  std::uniform_real_distribution<double> jitter(0.0, 4.0);
  std::uniform_real_distribution<double> gain_dist(0.0, 50000.0);
  std::uniform_int_distribution<int> filler_int(0, 999);
  std::uniform_int_distribution<int> filler_str(0, 19);

  for (int i = 0; i < config.num_rows; ++i) {
    int age = age_dist(rng);
    int edu = edu_dist(rng);
    int hours = hours_dist(rng);
    double hourly = 8.0 + 2.0 * edu + 0.2 * (age - 18) + jitter(rng);
    double income = std::floor(hourly * hours * 52.0);
    // Progressive tax with a zero band below the threshold; flooring to
    // tens keeps Tax nondecreasing in Income, so d1 holds exactly.
    double tax = income <= config.tax_threshold
                     ? 0.0
                     : std::floor(config.tax_rate *
                                  (income - config.tax_threshold) / 10.0) *
                           10.0;
    double weekly = std::floor(income / 52.0);
    double monthly = 4.0 * weekly;

    std::vector<Value> row;
    row.reserve(config.num_attributes);
    row.push_back(Value::Int(age));
    row.push_back(Value::Int(edu));
    row.push_back(Value::Int(hours));
    row.push_back(Value::Double(income));
    row.push_back(Value::Double(tax));
    row.push_back(Value::Double(weekly));
    row.push_back(Value::Double(monthly));
    row.push_back(Value::Double(std::floor(gain_dist(rng))));
    for (int a = 8; a < config.num_attributes; ++a) {
      if (a % 2 == 0) {
        row.push_back(Value::Int(filler_int(rng)));
      } else {
        row.push_back(Value::String("v" + std::to_string(filler_str(rng))));
      }
    }
    rel.AddRow(std::move(row));
  }
  data.clean = std::move(rel);

  const AttrId kIncome = CensusAttrs::kIncome;
  const AttrId kTax = CensusAttrs::kTax;
  const AttrId kWeekly = CensusAttrs::kWeeklyWage;
  const AttrId kMonthly = CensusAttrs::kMonthlyWage;

  // d1: not(Income> & Tax<)
  data.precise.push_back(DenialConstraint(
      {Predicate::TwoCell(0, kIncome, Op::kGt, 1, kIncome),
       Predicate::TwoCell(0, kTax, Op::kLt, 1, kTax)},
      "dc_tax"));
  // d2: not(Weekly> & Monthly<)
  data.precise.push_back(DenialConstraint(
      {Predicate::TwoCell(0, kWeekly, Op::kGt, 1, kWeekly),
       Predicate::TwoCell(0, kMonthly, Op::kLt, 1, kMonthly)},
      "dc_wage"));
  // d3: not(t0.Tax > t0.Income) — single-tuple linear DC.
  data.precise.push_back(DenialConstraint(
      {Predicate::TwoCell(0, kTax, Op::kGt, 0, kIncome)}, "dc_tax_le_income"));

  // Given: d1 with the oversimplified "<=" (Example 4 of the paper), d2
  // with the oversimplified "!=" (order refines inequality), d3 precise.
  data.given.push_back(DenialConstraint(
      {Predicate::TwoCell(0, kIncome, Op::kGt, 1, kIncome),
       Predicate::TwoCell(0, kTax, Op::kLeq, 1, kTax)},
      "dc_tax_oversimplified"));
  data.given.push_back(DenialConstraint(
      {Predicate::TwoCell(0, kWeekly, Op::kGt, 1, kWeekly),
       Predicate::TwoCell(0, kMonthly, Op::kNeq, 1, kMonthly)},
      "dc_wage_oversimplified"));
  data.given.push_back(data.precise[2]);

  // Insertable space: only the core numeric attributes take part (the
  // fillers are meaningless for these rules and only slow enumeration).
  for (int a = 7; a < config.num_attributes; ++a) {
    data.space.excluded_attrs.push_back(a);
  }

  data.noise_attrs = {kTax, kMonthly};
  return data;
}

}  // namespace cvrepair
