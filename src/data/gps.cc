#include "data/gps.h"

#include <cmath>
#include <random>

namespace cvrepair {

GpsData MakeGps(const GpsConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> step_dist(-config.max_step,
                                                   config.max_step);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_real_distribution<double> jump_dist(config.jump_min,
                                                   config.jump_max);

  GpsData data;
  Schema schema;
  schema.AddAttribute("Seq", AttrType::kInt, /*is_key=*/true);
  schema.AddAttribute("X", AttrType::kDouble);
  schema.AddAttribute("Y", AttrType::kDouble);
  schema.AddAttribute("StepX", AttrType::kDouble);
  schema.AddAttribute("StepY", AttrType::kDouble);
  schema.AddAttribute("Quality", AttrType::kInt);
  const AttrId kX = 1, kY = 2, kStepX = 3, kStepY = 4, kQuality = 5;

  // Clean walk.
  Relation clean(schema);
  double x = 0.0, y = 0.0;
  for (int i = 0; i < config.num_points; ++i) {
    double sx = i == 0 ? 0.0 : std::round(step_dist(rng) * 10.0) / 10.0;
    double sy = i == 0 ? 0.0 : std::round(step_dist(rng) * 10.0) / 10.0;
    x += sx;
    y += sy;
    int quality = coin(rng) < 0.5 ? 0 : 1;
    clean.AddRow({Value::Int(i), Value::Double(x), Value::Double(y),
                  Value::Double(sx), Value::Double(sy), Value::Int(quality)});
  }

  // Dirty copy: displace ~jump_fraction of the points; the displaced
  // point's incoming step and the next point's step both blow up.
  Relation dirty = clean;
  CellSet dirty_cells;
  for (int i = 1; i + 1 < config.num_points; ++i) {
    if (coin(rng) >= config.jump_fraction) continue;
    if (dirty_cells.count({i, kStepX}) || dirty_cells.count({i + 1, kStepX}))
      continue;
    double jx = jump_dist(rng) * (coin(rng) < 0.5 ? -1.0 : 1.0);
    double jy = jump_dist(rng) * (coin(rng) < 0.5 ? -1.0 : 1.0);
    dirty.SetValue(i, kX, Value::Double(dirty.Get(i, kX).numeric() + jx));
    dirty.SetValue(i, kY, Value::Double(dirty.Get(i, kY).numeric() + jy));
    dirty.SetValue(i, kStepX,
                   Value::Double(dirty.Get(i, kStepX).numeric() + jx));
    dirty.SetValue(i, kStepY,
                   Value::Double(dirty.Get(i, kStepY).numeric() + jy));
    dirty.SetValue(i + 1, kStepX,
                   Value::Double(dirty.Get(i + 1, kStepX).numeric() - jx));
    dirty.SetValue(i + 1, kStepY,
                   Value::Double(dirty.Get(i + 1, kStepY).numeric() - jy));
    for (Cell c : {Cell{i, kX}, Cell{i, kY}, Cell{i, kStepX}, Cell{i, kStepY},
                   Cell{i + 1, kStepX}, Cell{i + 1, kStepY}}) {
      dirty_cells.insert(c);
    }
  }

  auto bound = [&](AttrId attr, Op op, double limit, const char* name,
                   bool with_quality) {
    std::vector<Predicate> preds = {
        Predicate::WithConstant(0, attr, op, Value::Double(limit))};
    if (with_quality) {
      preds.push_back(
          Predicate::WithConstant(0, kQuality, Op::kEq, Value::Int(0)));
    }
    return DenialConstraint(std::move(preds), name);
  };
  data.precise = {
      bound(kStepX, Op::kGt, config.step_limit, "dc_stepx_hi", false),
      bound(kStepX, Op::kLt, -config.step_limit, "dc_stepx_lo", false),
      bound(kStepY, Op::kGt, config.step_limit, "dc_stepy_hi", false),
      bound(kStepY, Op::kLt, -config.step_limit, "dc_stepy_lo", false)};
  data.given = {
      bound(kStepX, Op::kGt, config.step_limit, "dc_stepx_hi_refined", true),
      bound(kStepX, Op::kLt, -config.step_limit, "dc_stepx_lo_refined", true),
      bound(kStepY, Op::kGt, config.step_limit, "dc_stepy_hi_refined", true),
      bound(kStepY, Op::kLt, -config.step_limit, "dc_stepy_lo_refined", true)};

  data.clean = std::move(clean);
  data.dirty = std::move(dirty);
  data.dirty_cells = std::move(dirty_cells);
  data.eval_attrs = {kStepX, kStepY};
  return data;
}

}  // namespace cvrepair
