#include "solver/components.h"

#include <algorithm>
#include <numeric>

namespace cvrepair {

namespace {

// Plain union-find.
struct DisjointSet {
  std::vector<int> parent;
  explicit DisjointSet(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

std::vector<Component> DecomposeComponents(const RepairContext& rc) {
  int n = rc.num_vars();
  DisjointSet ds(n);
  for (const RcAtom& a : rc.atoms()) {
    if (a.rhs_is_var) ds.Union(a.lhs_var, a.rhs_var);
  }

  // Group vars by root, keeping cell order (cells() is sorted).
  std::vector<std::vector<int>> groups;
  std::vector<int> group_of(n, -1);
  for (int v = 0; v < n; ++v) {
    int root = ds.Find(v);
    if (group_of[root] < 0) {
      group_of[root] = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[group_of[root]].push_back(v);
  }

  std::vector<Component> components(groups.size());
  std::vector<int> local_id(n, -1);
  std::vector<int> comp_of(n, -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    Component& comp = components[g];
    for (int v : groups[g]) {
      local_id[v] = static_cast<int>(comp.cells.size());
      comp_of[v] = static_cast<int>(g);
      comp.cells.push_back(rc.cell(v));
    }
  }
  for (const RcAtom& a : rc.atoms()) {
    Component& comp = components[comp_of[a.lhs_var]];
    RcAtom local = a;
    local.lhs_var = local_id[a.lhs_var];
    if (a.rhs_is_var) local.rhs_var = local_id[a.rhs_var];
    comp.atoms.push_back(std::move(local));
  }
  for (Component& comp : components) {
    std::sort(comp.atoms.begin(), comp.atoms.end());
    comp.atoms.erase(std::unique(comp.atoms.begin(), comp.atoms.end()),
                     comp.atoms.end());
  }
  return components;
}

}  // namespace cvrepair
