#include "solver/materialized_cache.h"

#include "dc/op.h"
#include "util/metrics.h"

namespace cvrepair {

namespace {

// Registry twins of the per-instance hit/miss atomics: all caches in the
// process aggregate here for metrics.json. Lookups run only during the
// serial replay of component solutions, so the totals are deterministic.
struct CacheMetrics {
  MetricCounter* hits;
  MetricCounter* misses;
  MetricCounter* stores;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    CacheMetrics* fresh = new CacheMetrics();
    fresh->hits = r.GetCounter("cache.lookup_hits");
    fresh->misses = r.GetCounter("cache.lookup_misses");
    fresh->stores = r.GetCounter("cache.stores");
    return fresh;
  }();
  return *m;
}

}  // namespace

bool ContextRefines(const std::vector<RcAtom>& refined,
                    const std::vector<RcAtom>& base) {
  for (const RcAtom& b : base) {
    bool matched = false;
    for (const RcAtom& r : refined) {
      if (b.SameOperands(r) && Implies(r.op, b.op)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::optional<ComponentSolution> MaterializedCache::Lookup(
    const Component& component) const {
  auto it = entries_.find(component.cells);
  if (it != entries_.end()) {
    for (const Entry& entry : it->second) {
      if (!ContextRefines(component.atoms, entry.atoms)) continue;
      if (!SolutionSatisfies(component, entry.solution)) continue;
      hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits->Increment();
      return entry.solution;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses->Increment();
  return std::nullopt;
}

void MaterializedCache::Store(const Component& component,
                              const ComponentSolution& solution) {
  entries_[component.cells].push_back({component.atoms, solution});
  ++total_entries_;
  Metrics().stores->Increment();
}

}  // namespace cvrepair
