#include "solver/materialized_cache.h"

#include "dc/op.h"

namespace cvrepair {

bool ContextRefines(const std::vector<RcAtom>& refined,
                    const std::vector<RcAtom>& base) {
  for (const RcAtom& b : base) {
    bool matched = false;
    for (const RcAtom& r : refined) {
      if (b.SameOperands(r) && Implies(r.op, b.op)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::optional<ComponentSolution> MaterializedCache::Lookup(
    const Component& component) const {
  auto it = entries_.find(component.cells);
  if (it != entries_.end()) {
    for (const Entry& entry : it->second) {
      if (!ContextRefines(component.atoms, entry.atoms)) continue;
      if (!SolutionSatisfies(component, entry.solution)) continue;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entry.solution;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void MaterializedCache::Store(const Component& component,
                              const ComponentSolution& solution) {
  entries_[component.cells].push_back({component.atoms, solution});
  ++total_entries_;
}

}  // namespace cvrepair
