#include "solver/materialized_cache.h"

#include <algorithm>

#include "dc/op.h"
#include "util/metrics.h"

namespace cvrepair {

namespace {

// Registry twins of the per-instance hit/miss atomics: all caches in the
// process aggregate here for metrics.json. Lookups run only during the
// serial replay of component solutions, so the totals are deterministic.
struct CacheMetrics {
  MetricCounter* hits;
  MetricCounter* misses;
  MetricCounter* stores;
  MetricCounter* evictions;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    CacheMetrics* fresh = new CacheMetrics();
    fresh->hits = r.GetCounter("cache.lookup_hits");
    fresh->misses = r.GetCounter("cache.lookup_misses");
    fresh->stores = r.GetCounter("cache.stores");
    fresh->evictions = r.GetCounter("cache.evictions");
    return fresh;
  }();
  return *m;
}

}  // namespace

bool ContextRefines(const std::vector<RcAtom>& refined,
                    const std::vector<RcAtom>& base) {
  for (const RcAtom& b : base) {
    bool matched = false;
    for (const RcAtom& r : refined) {
      if (b.SameOperands(r) && Implies(r.op, b.op)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::optional<ComponentSolution> MaterializedCache::Lookup(
    const Component& component, bool* prior_epoch) const {
  if (prior_epoch != nullptr) *prior_epoch = false;
  auto it = entries_.find(component.cells);
  if (it != entries_.end()) {
    // Pass 1: current-epoch entries under the refinement rule, in store
    // order — exactly what a single-pass (cold) cache would answer.
    for (const Entry& entry : it->second) {
      if (entry.epoch != epoch_) continue;
      if (!ContextRefines(component.atoms, entry.atoms)) continue;
      if (!SolutionSatisfies(component, entry.solution)) continue;
      hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits->Increment();
      return entry.solution;
    }
    // Pass 2: prior-epoch entries, exact atoms only (see class comment).
    for (const Entry& entry : it->second) {
      if (entry.epoch == epoch_) continue;
      if (entry.atoms != component.atoms) continue;
      if (!SolutionSatisfies(component, entry.solution)) continue;
      hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits->Increment();
      if (prior_epoch != nullptr) *prior_epoch = true;
      return entry.solution;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses->Increment();
  return std::nullopt;
}

void MaterializedCache::Store(const Component& component,
                              const ComponentSolution& solution) {
  entries_[component.cells].push_back({component.atoms, solution, epoch_});
  ++total_entries_;
  Metrics().stores->Increment();
}

int MaterializedCache::EvictTouching(const std::vector<int>& rows,
                                     const std::vector<AttrId>& attrs) {
  int dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool touched = false;
    for (const Cell& c : it->first) {
      if (std::binary_search(rows.begin(), rows.end(), c.row) ||
          std::binary_search(attrs.begin(), attrs.end(), c.attr)) {
        touched = true;
        break;
      }
    }
    if (touched) {
      dropped += static_cast<int>(it->second.size());
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  total_entries_ -= dropped;
  if (dropped > 0) Metrics().evictions->Add(dropped);
  return dropped;
}

int MaterializedCache::Clear() {
  int dropped = total_entries_;
  entries_.clear();
  total_entries_ = 0;
  if (dropped > 0) Metrics().evictions->Add(dropped);
  return dropped;
}

}  // namespace cvrepair
