#include "solver/repair_context.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cvrepair {

RepairContext RepairContext::Build(const Relation& I,
                                   const ConstraintSet& sigma,
                                   const std::vector<Cell>& changing,
                                   const std::vector<Violation>& suspects) {
  RepairContext rc;
  rc.cells_ = changing;
  std::sort(rc.cells_.begin(), rc.cells_.end());
  rc.cells_.erase(std::unique(rc.cells_.begin(), rc.cells_.end()),
                  rc.cells_.end());
  for (int v = 0; v < static_cast<int>(rc.cells_.size()); ++v) {
    rc.var_of_[rc.cells_[v]] = v;
  }

  std::set<RcAtom> atoms;
  for (const Violation& s : suspects) {
    const DenialConstraint& c = sigma[s.constraint_index];
    for (const Predicate& p : c.predicates()) {
      Cell lhs{s.rows[p.lhs().tuple], p.lhs().attr};
      int lv = rc.VarOf(lhs);
      if (p.has_constant()) {
        if (lv < 0) continue;  // suspect-condition predicate, not rc
        RcAtom atom;
        atom.lhs_var = lv;
        atom.op = Inverse(p.op());
        atom.rhs_is_var = false;
        atom.rhs_const = p.constant();
        if (atom.rhs_const.is_null() || atom.rhs_const.is_fresh()) continue;
        atoms.insert(std::move(atom));
        continue;
      }
      Cell rhs{s.rows[p.rhs_cell().tuple], p.rhs_cell().attr};
      int rv = rc.VarOf(rhs);
      if (lv < 0 && rv < 0) continue;  // neither side changes
      RcAtom atom;
      Op inv = Inverse(p.op());
      if (lv >= 0 && rv >= 0) {
        if (lv == rv) continue;  // degenerate self-comparison
        // Canonical order: smaller var id on the left.
        if (lv <= rv) {
          atom.lhs_var = lv;
          atom.op = inv;
          atom.rhs_is_var = true;
          atom.rhs_var = rv;
        } else {
          atom.lhs_var = rv;
          atom.op = FlipOperands(inv);
          atom.rhs_is_var = true;
          atom.rhs_var = lv;
        }
      } else if (lv >= 0) {
        atom.lhs_var = lv;
        atom.op = inv;
        atom.rhs_is_var = false;
        atom.rhs_const = I.Get(rhs);
      } else {  // rv >= 0: I(lhs) inv I'(rhs)  ==>  I'(rhs) flip(inv) I(lhs)
        atom.lhs_var = rv;
        atom.op = FlipOperands(inv);
        atom.rhs_is_var = false;
        atom.rhs_const = I.Get(lhs);
      }
      // A NULL/fv fixed operand makes the original predicate unconditionally
      // false, so the inverse constraint is vacuous.
      if (!atom.rhs_is_var &&
          (atom.rhs_const.is_null() || atom.rhs_const.is_fresh())) {
        continue;
      }
      atoms.insert(std::move(atom));
    }
  }
  // Compress numeric bound atoms: for one variable, {>= c1, >= c2, ...}
  // is equivalent to the single tightest bound (same for >, <, <=). This
  // keeps order-DC contexts linear in the number of variables instead of
  // quadratic in the instance, without changing the feasible sets.
  struct NumericBounds {
    const RcAtom* gt = nullptr;
    const RcAtom* geq = nullptr;
    const RcAtom* lt = nullptr;
    const RcAtom* leq = nullptr;
  };
  std::unordered_map<int, NumericBounds> bounds;
  rc.atoms_.reserve(atoms.size());
  for (const RcAtom& a : atoms) {
    if (a.rhs_is_var || !a.rhs_const.is_numeric() ||
        (a.op != Op::kGt && a.op != Op::kGeq && a.op != Op::kLt &&
         a.op != Op::kLeq)) {
      rc.atoms_.push_back(a);
      continue;
    }
    NumericBounds& b = bounds[a.lhs_var];
    const RcAtom** slot = a.op == Op::kGt    ? &b.gt
                          : a.op == Op::kGeq ? &b.geq
                          : a.op == Op::kLt  ? &b.lt
                                             : &b.leq;
    bool lower = a.op == Op::kGt || a.op == Op::kGeq;
    if (*slot == nullptr ||
        (lower ? a.rhs_const.numeric() > (*slot)->rhs_const.numeric()
               : a.rhs_const.numeric() < (*slot)->rhs_const.numeric())) {
      *slot = &a;
    }
  }
  for (const auto& [var, b] : bounds) {
    (void)var;
    for (const RcAtom* a : {b.gt, b.geq, b.lt, b.leq}) {
      if (a != nullptr) rc.atoms_.push_back(*a);
    }
  }
  std::sort(rc.atoms_.begin(), rc.atoms_.end());
  return rc;
}

std::string RepairContext::ToString(const Relation& I) const {
  const Schema& schema = I.schema();
  std::ostringstream os;
  auto cell_name = [&](const Cell& c) {
    return "t" + std::to_string(c.row) + "." + schema.name(c.attr);
  };
  for (const RcAtom& a : atoms_) {
    os << "I'(" << cell_name(cells_[a.lhs_var]) << ")" << OpToString(a.op);
    if (a.rhs_is_var) {
      os << "I'(" << cell_name(cells_[a.rhs_var]) << ")";
    } else {
      os << a.rhs_const.ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cvrepair
