#ifndef CVREPAIR_SOLVER_INTERVAL_H_
#define CVREPAIR_SOLVER_INTERVAL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "dc/op.h"
#include "relation/relation.h"
#include "solver/components.h"

namespace cvrepair {

/// A numeric interval with open/closed endpoints plus a (small) set of
/// ≠-punctures. The interval solver narrows these AC-3 style from the
/// repair-context atoms of a component, then picks the value of minimum
/// |Δ| from the dirty original inside the final interval — the
/// Bertossi–Bravo min-change numeric fix that replaces the fresh-variable
/// fallback for order/range constraints.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;
  bool hi_open = false;
  /// Values excluded by ≠ atoms (unordered, deduplicated on insert).
  std::vector<double> holes;

  static Interval All() { return Interval{}; }

  /// True iff `x` lies inside the interval (bounds and punctures).
  bool Contains(double x) const;
};

/// Narrows `iv` with the unary constraint `x op c`. Returns true iff the
/// interval actually changed — one "narrowing" in the AC-3 sense. kEq
/// collapses to [c, c]; kNeq punctures.
bool NarrowWithConst(Interval* iv, Op op, double c);

/// Narrows `x` with the binary constraint `x op y`, given the current
/// interval of y (bound propagation: x < y tightens x's upper bound to
/// sup(y), open; x = y intersects; x ≠ y punctures only when y is a
/// point). Returns true iff x changed.
bool NarrowWithInterval(Interval* x, Op op, const Interval& y);

/// Rounds the bounds of an integer-typed variable inward to the tightest
/// closed integer bounds (an open bound at an integer steps past it).
/// Returns true iff the interval changed.
bool SnapIntegral(Interval* iv);

/// The minimum-|Δ| value inside `iv` measured from `origin` (the dirty
/// original), avoiding punctures and respecting open bounds. Integral
/// domains step by 1; continuous domains nudge off an open bound by
/// min(1, width/2). The result folds −0.0 to +0.0. Ties (two values at
/// equal |Δ|) prefer the smaller value, so the pick is deterministic.
/// Returns nullopt iff the interval is genuinely empty — the only case
/// that still warrants a fresh variable.
std::optional<double> PickMinDelta(const Interval& iv, double origin,
                                   bool integral);

/// Result of an interval solve over the live variables of a component.
struct IntervalResult {
  /// False when some atom is not a numeric order/range comparison (or a
  /// variable is non-numeric): the caller must use its usual fallback.
  bool applicable = false;
  /// Parallel to the `vars` argument: values[i] is the pick for vars[i];
  /// meaningful only where fresh[i] is false.
  std::vector<Value> values;
  /// fresh[i] is true when vars[i]'s interval narrowed to empty — the
  /// genuine fresh-variable fallback.
  std::vector<bool> fresh;
  /// Bound-tightening operations performed (deterministic work counter).
  int64_t narrowings = 0;
};

/// Attempts to solve the still-live variables `vars` of `component` by
/// AC-3 interval narrowing followed by a sequential min-|Δ| assignment
/// (already-assigned neighbors fold in as constants), re-verifying every
/// atom on the concrete picks. Atoms touching an is_fv variable are
/// discharged. Returns applicable=false when any relevant atom is not a
/// numeric comparison or verification fails — the caller then keeps its
/// existing fresh-variable fallback, so the routine is always sound.
IntervalResult IntervalSolveComponent(const Relation& I,
                                      const Component& component,
                                      const std::vector<int>& vars,
                                      const std::vector<bool>& is_fv,
                                      const std::vector<Value>& original);

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_INTERVAL_H_
