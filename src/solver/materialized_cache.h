#ifndef CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_
#define CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "solver/components.h"
#include "solver/csp_solver.h"

namespace cvrepair {

/// Materialized component solutions, shared across constraint variants
/// (Section 4.2). Keyed by the component's cell set; a stored solution for
/// rc(C_k, Σ1) is reused for a new context rc(C_k, Σ2) when
///   (a) rc(C_k, Σ2) ⊑ rc(C_k, Σ1) (Definition 7: every stored atom is
///       matched by a new atom on the same operands whose operator implies
///       it), and
///   (b) the stored solution satisfies the new context,
/// in which case the stored optimum is optimal for the new context too
/// (Proposition 6). Identical contexts qualify trivially.
class MaterializedCache {
 public:
  /// Returns a reusable solution for (cells, atoms), or nullopt. Safe to
  /// call concurrently from pool threads as long as no Store runs: the map
  /// is only read, and the hit/miss counters are relaxed atomics (they are
  /// statistics, not synchronization).
  std::optional<ComponentSolution> Lookup(const Component& component) const;

  /// Stores a solved component for later reuse. Not safe to interleave
  /// with concurrent Lookup/Store calls.
  void Store(const Component& component, const ComponentSolution& solution);

  int size() const { return total_entries_; }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct CellVecHash {
    size_t operator()(const std::vector<Cell>& cells) const {
      size_t seed = cells.size();
      CellHash h;
      for (const Cell& c : cells) seed = seed * 1000003 ^ h(c);
      return seed;
    }
  };
  struct Entry {
    std::vector<RcAtom> atoms;
    ComponentSolution solution;
  };

  std::unordered_map<std::vector<Cell>, std::vector<Entry>, CellVecHash>
      entries_;
  int total_entries_ = 0;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

/// Definition 7: true iff `refined` ⊑ `base` — for every atom of `base`
/// there is an atom of `refined` on the same operands whose operator
/// implies it.
bool ContextRefines(const std::vector<RcAtom>& refined,
                    const std::vector<RcAtom>& base);

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_
