#ifndef CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_
#define CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "solver/components.h"
#include "solver/csp_solver.h"

namespace cvrepair {

/// Materialized component solutions, shared across constraint variants
/// (Section 4.2). Keyed by the component's cell set; a stored solution for
/// rc(C_k, Σ1) is reused for a new context rc(C_k, Σ2) when
///   (a) rc(C_k, Σ2) ⊑ rc(C_k, Σ1) (Definition 7: every stored atom is
///       matched by a new atom on the same operands whose operator implies
///       it), and
///   (b) the stored solution satisfies the new context,
/// in which case the stored optimum is optimal for the new context too
/// (Proposition 6). Identical contexts qualify trivially.
///
/// Cross-batch reuse (streaming). A cache can outlive one repair pass:
/// `BeginEpoch` stamps a generation boundary, and entries stored before the
/// current epoch answer lookups only under a stricter rule — exact atom
/// equality instead of refinement. Refinement is sound within one pass
/// (Proposition 6 assumes both contexts read the same instance), but across
/// batches the instance underneath has changed; equality of the full atom
/// vector pins the component's surrounding constants, which together with
/// the owner's row/attribute eviction (see EvictTouching) guarantees the
/// solver would reproduce the stored solution verbatim. That is what keeps
/// a persistent cache bit-identical to a cold per-batch cache.
class MaterializedCache {
 public:
  /// Returns a reusable solution for (cells, atoms), or nullopt.
  /// Current-epoch entries are scanned first, in store order, under the
  /// Definition 7 refinement rule — identical behaviour to a cache that
  /// only ever lived for one pass. Prior-epoch entries are consulted after
  /// that, requiring exact atom equality. When `prior_epoch` is non-null it
  /// is set to true iff the returned hit came from a prior epoch. Safe to
  /// call concurrently from pool threads as long as no Store runs: the map
  /// is only read, and the hit/miss counters are relaxed atomics (they are
  /// statistics, not synchronization).
  std::optional<ComponentSolution> Lookup(const Component& component,
                                          bool* prior_epoch = nullptr) const;

  /// Stores a solved component for later reuse, stamped with the current
  /// epoch. Not safe to interleave with concurrent Lookup/Store calls.
  void Store(const Component& component, const ComponentSolution& solution);

  /// Marks a generation boundary: everything stored so far becomes
  /// prior-epoch (exact-match-only) in subsequent lookups.
  void BeginEpoch() { ++epoch_; }

  /// Drops every entry whose component touches one of `rows` or one of
  /// `attrs` (both sorted ascending). Callers evict before re-solving a
  /// batch: a stored solution is stale once any of its cells' original
  /// values or any of its attributes' domains/frequencies may have
  /// changed. Returns the number of entries dropped.
  int EvictTouching(const std::vector<int>& rows,
                    const std::vector<AttrId>& attrs);

  /// Drops everything. Returns the number of entries dropped.
  int Clear();

  int size() const { return total_entries_; }
  int64_t epoch() const { return epoch_; }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct CellVecHash {
    size_t operator()(const std::vector<Cell>& cells) const {
      size_t seed = cells.size();
      CellHash h;
      for (const Cell& c : cells) seed = seed * 1000003 ^ h(c);
      return seed;
    }
  };
  struct Entry {
    std::vector<RcAtom> atoms;
    ComponentSolution solution;
    int64_t epoch = 0;
  };

  std::unordered_map<std::vector<Cell>, std::vector<Entry>, CellVecHash>
      entries_;
  int total_entries_ = 0;
  int64_t epoch_ = 0;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

/// Definition 7: true iff `refined` ⊑ `base` — for every atom of `base`
/// there is an atom of `refined` on the same operands whose operator
/// implies it.
bool ContextRefines(const std::vector<RcAtom>& refined,
                    const std::vector<RcAtom>& base);

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_MATERIALIZED_CACHE_H_
