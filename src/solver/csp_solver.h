#ifndef CVREPAIR_SOLVER_CSP_SOLVER_H_
#define CVREPAIR_SOLVER_CSP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "relation/domain_stats.h"
#include "relation/relation.h"
#include "repair/costs.h"
#include "solver/components.h"

namespace cvrepair {

/// Knobs for the component solver.
struct SolverOptions {
  /// Cap on per-variable candidate values (after unary filtering).
  int max_candidates_per_var = 50;
  /// Backtracking node budget per component; exhaustion falls back to
  /// fresh-variable assignment like unsatisfiability does.
  int max_search_nodes = 20000;
  /// Components with more live variables than this skip the exact search
  /// and use a greedy most-constrained-first assignment (still sound:
  /// every unsatisfiable step degrades to a fresh variable).
  int max_exact_vars = 12;
  /// Numeric interval propagation (solver/interval.h): before minting a
  /// fresh variable, components whose atoms are numeric order/range
  /// comparisons get an AC-3 interval narrowing pass and a min-|Δ| value
  /// pick inside the final interval; a fresh variable remains only for
  /// genuinely empty intervals. Off restores the paper's Section 4.1.3
  /// fresh-variable fallback verbatim.
  bool use_interval = true;
};

/// Assignment for one component: values[i] is the repaired value for
/// Component::cells[i] (possibly the original value, possibly a fresh
/// variable). `cost` is the count-model repair cost of the assignment.
struct ComponentSolution {
  std::vector<Value> values;
  double cost = 0.0;
  int fresh_count = 0;
  /// Atom/candidate evaluations Solve spent on this component — a pure
  /// function of the component (and solver options), so callers may
  /// publish it as a deterministic work counter no matter which thread
  /// produced the solution. Cache hits hand back the stored count; the
  /// consumer decides whether reuse counts as work (the vfree replay does
  /// not re-publish it).
  int64_t atom_evals = 0;
  /// Interval bound-tightenings performed by the numeric propagation
  /// passes (solver/interval.h) — same determinism contract as
  /// atom_evals, published as solve.interval_narrowings by the vfree
  /// serial replay.
  int64_t interval_narrowings = 0;
};

/// Solves repair-context components (the "existing solver" slot of
/// Algorithm 2, line 9): candidate values come from the active domain of
/// each attribute (plus constants mentioned by the context), candidates
/// are ranked original-first then nearest-first (numeric) or
/// most-frequent-first (categorical, the VFM heuristic of [8]), and a
/// cost-bounded backtracking search finds a minimum-cost assignment.
///
/// The fresh-variable rules of Section 4.1.3 are implemented exactly:
/// a variable whose unary context rc(t.A, Σ) admits no domain value is
/// assigned fv up front; if the search still fails, the variable occurring
/// in the most atoms is assigned fv (removing its atoms) and the search
/// repeats — so Solve always returns a valid assignment.
class CspSolver {
 public:
  /// `I` supplies original cell values; `stats` supplies domains and
  /// frequencies (typically computed once per repair run on the dirty
  /// input). Fresh ids are drawn from `fresh_counter`, which must outlive
  /// the solver.
  CspSolver(const Relation& I, const DomainStats& stats, CostModel cost,
            int64_t* fresh_counter, SolverOptions options = {});

  /// Solves one component; never fails (see class comment).
  ComponentSolution Solve(const Component& component);

 private:
  const Relation& I_;
  const DomainStats& stats_;
  CostModel cost_;
  int64_t* fresh_counter_;
  SolverOptions options_;
};

/// True iff `solution` satisfies every atom of `component` under
/// fresh-variable semantics (atoms touching an fv-assigned variable are
/// vacuously discharged). Used by tests and by the materialized cache.
bool SolutionSatisfies(const Component& component,
                       const ComponentSolution& solution);

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_CSP_SOLVER_H_
