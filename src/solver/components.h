#ifndef CVREPAIR_SOLVER_COMPONENTS_H_
#define CVREPAIR_SOLVER_COMPONENTS_H_

#include <vector>

#include "relation/relation.h"
#include "solver/repair_context.h"

namespace cvrepair {

/// One independent subproblem of the repair context (Section 4.2): a set
/// of changing cells connected by variable-variable atoms, with all of
/// their atoms re-indexed to component-local variable ids 0..k-1 (sorted
/// by cell so that structurally equal components hash identically, which
/// is what makes cross-variant sharing possible).
struct Component {
  /// Component cells; local var id i corresponds to cells[i].
  std::vector<Cell> cells;
  /// Atoms over local var ids, sorted and deduplicated.
  std::vector<RcAtom> atoms;
};

/// Decomposes rc(C, Σ) into components C_1, ..., C_m such that no
/// variable-variable atom crosses components. Variables with no atoms at
/// all form singleton components with empty atom lists (they still belong
/// to the changing set and may be repaired to eliminate violations that
/// other cells of the same hyperedge already handle — in practice the
/// cover minimization makes this rare).
std::vector<Component> DecomposeComponents(const RepairContext& rc);

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_COMPONENTS_H_
