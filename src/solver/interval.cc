#include "solver/interval.h"

#include <algorithm>
#include <cmath>

namespace cvrepair {

namespace {

// Folds -0.0 to +0.0 so picks hash and compare canonically (the serve
// layer's FNV keys apply the same fold).
double FoldZero(double x) { return x == 0.0 ? 0.0 : x; }

bool RaiseLo(Interval* iv, double c, bool open) {
  if (c > iv->lo || (c == iv->lo && open && !iv->lo_open)) {
    iv->lo = c;
    iv->lo_open = open;
    return true;
  }
  return false;
}

bool LowerHi(Interval* iv, double c, bool open) {
  if (c < iv->hi || (c == iv->hi && open && !iv->hi_open)) {
    iv->hi = c;
    iv->hi_open = open;
    return true;
  }
  return false;
}

bool AddHole(Interval* iv, double c) {
  c = FoldZero(c);
  if (c < iv->lo || c > iv->hi) return false;  // outside: irrelevant
  if (std::find(iv->holes.begin(), iv->holes.end(), c) != iv->holes.end()) {
    return false;
  }
  iv->holes.push_back(c);
  return true;
}

bool IsHole(const Interval& iv, double x) {
  x = FoldZero(x);
  return std::find(iv.holes.begin(), iv.holes.end(), x) != iv.holes.end();
}

}  // namespace

bool Interval::Contains(double x) const {
  if (x < lo || (x == lo && lo_open)) return false;
  if (x > hi || (x == hi && hi_open)) return false;
  return !IsHole(*this, x);
}

bool NarrowWithConst(Interval* iv, Op op, double c) {
  switch (op) {
    case Op::kEq: {
      bool a = RaiseLo(iv, c, false);
      bool b = LowerHi(iv, c, false);
      return a || b;
    }
    case Op::kNeq:
      return AddHole(iv, c);
    case Op::kGt:
      return RaiseLo(iv, c, true);
    case Op::kGeq:
      return RaiseLo(iv, c, false);
    case Op::kLt:
      return LowerHi(iv, c, true);
    case Op::kLeq:
      return LowerHi(iv, c, false);
  }
  return false;
}

bool NarrowWithInterval(Interval* x, Op op, const Interval& y) {
  switch (op) {
    case Op::kEq: {
      bool changed = false;
      if (std::isfinite(y.lo)) changed |= RaiseLo(x, y.lo, y.lo_open);
      if (std::isfinite(y.hi)) changed |= LowerHi(x, y.hi, y.hi_open);
      for (double h : y.holes) changed |= AddHole(x, h);
      return changed;
    }
    case Op::kNeq:
      // Prunable only when y is pinned to a single point.
      if (y.lo == y.hi && !y.lo_open && !y.hi_open && std::isfinite(y.lo)) {
        return AddHole(x, y.lo);
      }
      return false;
    case Op::kGt:
      // x > y >= inf(y)  =>  x > inf(y) (strict either way).
      return std::isfinite(y.lo) ? RaiseLo(x, y.lo, true) : false;
    case Op::kGeq:
      return std::isfinite(y.lo) ? RaiseLo(x, y.lo, y.lo_open) : false;
    case Op::kLt:
      return std::isfinite(y.hi) ? LowerHi(x, y.hi, true) : false;
    case Op::kLeq:
      return std::isfinite(y.hi) ? LowerHi(x, y.hi, y.hi_open) : false;
  }
  return false;
}

bool SnapIntegral(Interval* iv) {
  bool changed = false;
  if (std::isfinite(iv->lo)) {
    double l = std::ceil(iv->lo);
    if (iv->lo_open && l == iv->lo) l += 1.0;
    if (l != iv->lo || iv->lo_open) {
      iv->lo = l;
      iv->lo_open = false;
      changed = true;
    }
  }
  if (std::isfinite(iv->hi)) {
    double h = std::floor(iv->hi);
    if (iv->hi_open && h == iv->hi) h -= 1.0;
    if (h != iv->hi || iv->hi_open) {
      iv->hi = h;
      iv->hi_open = false;
      changed = true;
    }
  }
  return changed;
}

std::optional<double> PickMinDelta(const Interval& iv, double origin,
                                   bool integral) {
  if (iv.lo > iv.hi) return std::nullopt;
  if (integral) {
    Interval snapped = iv;
    SnapIntegral(&snapped);
    if (snapped.lo > snapped.hi) return std::nullopt;
    double lo = snapped.lo;
    double hi = snapped.hi;
    double base = std::llround(origin);
    base = std::clamp(base, lo, hi);
    // Search outward by distance; at each distance prefer the candidate
    // closer to origin, then the smaller one — deterministic.
    double width = hi - lo;  // may be +inf
    double max_d = std::min(width, static_cast<double>(iv.holes.size()) + 1.0);
    for (double d = 0.0; d <= max_d; d += 1.0) {
      double below = base - d;
      double above = base + d;
      std::vector<double> order;
      if (std::abs(below - origin) <= std::abs(above - origin)) {
        order = {below, above};
      } else {
        order = {above, below};
      }
      for (double c : order) {
        if (c < lo || c > hi) continue;
        if (IsHole(iv, c)) continue;
        return FoldZero(c);
      }
    }
    return std::nullopt;  // every integer in range is punctured
  }
  // Continuous domain.
  if (iv.lo == iv.hi) {
    if (iv.lo_open || iv.hi_open || IsHole(iv, iv.lo)) return std::nullopt;
    return FoldZero(iv.lo);
  }
  double v = std::clamp(origin, iv.lo, iv.hi);
  double width = iv.hi - iv.lo;  // > 0 here, possibly +inf
  double step = std::isfinite(width) ? std::min(1.0, width / 2.0) : 1.0;
  if (v == iv.lo && iv.lo_open) v = iv.lo + step;
  if (v == iv.hi && iv.hi_open) v = iv.hi - step;
  // Nudge off punctures, halving the step so we stay inside the bounds;
  // the puncture set is finite, so a free value exists and the loop is
  // bounded.
  for (int tries = 0; tries < 64 && IsHole(iv, v); ++tries) {
    step /= 2.0;
    double up = v + step;
    double down = v - step;
    bool up_ok = up < iv.hi || (up == iv.hi && !iv.hi_open);
    bool down_ok = down > iv.lo || (down == iv.lo && !iv.lo_open);
    if (up_ok && !IsHole(iv, up)) {
      v = up;
    } else if (down_ok && !IsHole(iv, down)) {
      v = down;
    } else if (up_ok) {
      v = up;
    } else if (down_ok) {
      v = down;
    } else {
      return std::nullopt;
    }
  }
  if (IsHole(iv, v)) return std::nullopt;
  if (!iv.Contains(v)) return std::nullopt;
  return FoldZero(v);
}

IntervalResult IntervalSolveComponent(const Relation& I,
                                      const Component& component,
                                      const std::vector<int>& vars,
                                      const std::vector<bool>& is_fv,
                                      const std::vector<Value>& original) {
  IntervalResult result;
  const int k = static_cast<int>(component.cells.size());
  std::vector<int> slot_of(k, -1);  // component var -> index into vars
  for (size_t i = 0; i < vars.size(); ++i) slot_of[vars[i]] = i;

  std::vector<bool> integral(vars.size(), false);
  for (size_t i = 0; i < vars.size(); ++i) {
    const Cell& cell = component.cells[vars[i]];
    if (!I.schema().is_numeric(cell.attr)) return result;  // not applicable
    integral[i] = I.schema().type(cell.attr) == AttrType::kInt;
  }

  // Collect the non-discharged atoms over `vars`; reject anything that is
  // not a pure numeric comparison.
  struct UnaryArc {
    int slot;
    Op op;
    double c;
  };
  struct BinaryArc {
    int lhs_slot;
    Op op;
    int rhs_slot;
  };
  std::vector<UnaryArc> unary;
  std::vector<BinaryArc> binary;
  for (const RcAtom& a : component.atoms) {
    if (is_fv[a.lhs_var]) continue;
    if (a.rhs_is_var && is_fv[a.rhs_var]) continue;
    int ls = slot_of[a.lhs_var];
    if (a.rhs_is_var) {
      int rs = slot_of[a.rhs_var];
      if (ls < 0 && rs < 0) continue;
      if (ls < 0 || rs < 0) return result;  // straddles the live set
      binary.push_back({ls, a.op, rs});
    } else {
      if (ls < 0) continue;
      if (!a.rhs_const.is_numeric()) return result;
      unary.push_back({ls, a.op, a.rhs_const.numeric()});
    }
  }

  // Seed from unary atoms, then propagate the binary arcs to a fixpoint
  // (AC-3 over bounds). When a variable's interval empties it becomes a
  // fresh candidate: its atoms discharge, so propagation restarts without
  // them — bounded by the variable count.
  std::vector<Interval> iv(vars.size());
  std::vector<bool> fresh(vars.size(), false);
  for (int restart = 0; restart <= static_cast<int>(vars.size()); ++restart) {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (fresh[i]) continue;
      iv[i] = Interval::All();
    }
    for (const UnaryArc& u : unary) {
      if (fresh[u.slot]) continue;
      if (NarrowWithConst(&iv[u.slot], u.op, u.c)) ++result.narrowings;
      if (integral[u.slot] && SnapIntegral(&iv[u.slot])) ++result.narrowings;
    }
    bool changed = true;
    for (int round = 0; round < 64 && changed; ++round) {
      changed = false;
      for (const BinaryArc& b : binary) {
        if (fresh[b.lhs_slot] || fresh[b.rhs_slot]) continue;
        if (NarrowWithInterval(&iv[b.lhs_slot], b.op, iv[b.rhs_slot])) {
          if (integral[b.lhs_slot]) SnapIntegral(&iv[b.lhs_slot]);
          ++result.narrowings;
          changed = true;
        }
        if (NarrowWithInterval(&iv[b.rhs_slot], FlipOperands(b.op),
                               iv[b.lhs_slot])) {
          if (integral[b.rhs_slot]) SnapIntegral(&iv[b.rhs_slot]);
          ++result.narrowings;
          changed = true;
        }
      }
    }
    bool emptied = false;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (fresh[i]) continue;
      if (iv[i].lo > iv[i].hi ||
          (iv[i].lo == iv[i].hi && (iv[i].lo_open || iv[i].hi_open))) {
        fresh[i] = true;
        emptied = true;
      }
    }
    if (!emptied) break;
  }

  // Sequential min-|Δ| assignment in variable order; atoms against
  // already-assigned neighbors fold in as constants (≠ becomes a
  // puncture at the neighbor's concrete value).
  std::vector<Value> values(vars.size());
  std::vector<bool> assigned(vars.size(), false);
  for (size_t i = 0; i < vars.size(); ++i) {
    if (fresh[i]) continue;
    Interval local = iv[i];
    for (const BinaryArc& b : binary) {
      int other = -1;
      Op op = b.op;
      if (b.lhs_slot == static_cast<int>(i)) {
        other = b.rhs_slot;
      } else if (b.rhs_slot == static_cast<int>(i)) {
        other = b.lhs_slot;
        op = FlipOperands(op);
      } else {
        continue;
      }
      if (fresh[other] || !assigned[other]) continue;
      if (NarrowWithConst(&local, op, values[other].numeric())) {
        ++result.narrowings;
      }
    }
    double origin = original[vars[i]].is_numeric()
                        ? original[vars[i]].numeric()
                        : 0.0;
    std::optional<double> pick = PickMinDelta(local, origin, integral[i]);
    if (!pick.has_value()) {
      fresh[i] = true;
      continue;
    }
    values[i] = integral[i]
                    ? Value::Int(static_cast<int64_t>(std::llround(*pick)))
                    : Value::Double(*pick);
    assigned[i] = true;
  }

  // Verify every concrete atom — bound consistency is not global
  // consistency, so a cyclic component can slip through; reject and let
  // the caller fall back rather than return an unsatisfying assignment.
  auto concrete = [&](int slot) { return !fresh[slot] && assigned[slot]; };
  for (const UnaryArc& u : unary) {
    if (!concrete(u.slot)) continue;
    // EvalOp compares numerics of different width numerically, so a
    // double-boxed constant is exact against int picks.
    if (!EvalOp(values[u.slot], u.op, Value::Double(u.c))) return result;
  }
  for (const BinaryArc& b : binary) {
    if (!concrete(b.lhs_slot) || !concrete(b.rhs_slot)) continue;
    if (!EvalOp(values[b.lhs_slot], b.op, values[b.rhs_slot])) return result;
  }

  result.applicable = true;
  result.values = std::move(values);
  result.fresh = std::move(fresh);
  return result;
}

}  // namespace cvrepair
