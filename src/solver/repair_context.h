#ifndef CVREPAIR_SOLVER_REPAIR_CONTEXT_H_
#define CVREPAIR_SOLVER_REPAIR_CONTEXT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "dc/violation.h"
#include "relation/relation.h"

namespace cvrepair {

/// One atomic repair-context constraint (Section 4.1.2): the inverse of a
/// DC predicate instantiated on a suspect tuple list, restricted to the
/// changing cells. Normalized so that the left side is always a variable
/// (a changing cell); the right side is either another variable or a
/// fixed constant (the current value of a non-changing cell, or a DC
/// constant).
struct RcAtom {
  int lhs_var = 0;
  Op op = Op::kEq;
  bool rhs_is_var = false;
  int rhs_var = 0;
  Value rhs_const;

  friend bool operator==(const RcAtom& a, const RcAtom& b) {
    if (a.lhs_var != b.lhs_var || a.op != b.op || a.rhs_is_var != b.rhs_is_var)
      return false;
    return a.rhs_is_var ? a.rhs_var == b.rhs_var : a.rhs_const == b.rhs_const;
  }
  friend bool operator<(const RcAtom& a, const RcAtom& b) {
    if (a.lhs_var != b.lhs_var) return a.lhs_var < b.lhs_var;
    if (a.rhs_is_var != b.rhs_is_var) return a.rhs_is_var < b.rhs_is_var;
    if (a.rhs_is_var && a.rhs_var != b.rhs_var) return a.rhs_var < b.rhs_var;
    if (!a.rhs_is_var && !(a.rhs_const == b.rhs_const))
      return a.rhs_const < b.rhs_const;
    return a.op < b.op;
  }

  /// True iff `a.op` on the atom's operands refers to the same operand pair
  /// as `b` (used by the refinement test of Definition 7).
  bool SameOperands(const RcAtom& b) const {
    if (lhs_var != b.lhs_var || rhs_is_var != b.rhs_is_var) return false;
    return rhs_is_var ? rhs_var == b.rhs_var : rhs_const == b.rhs_const;
  }
};

/// The assembled repair context rc(C, Σ) for a changing set C: variables
/// (one per changing cell) plus deduplicated atoms collected from every
/// suspect tuple list (formula (3) of the paper).
class RepairContext {
 public:
  /// Builds rc(C, Σ) from the suspects of C (see FindSuspects). Every
  /// predicate of a suspect's constraint that touches a changing cell
  /// contributes its inverse as an atom; predicates between two
  /// non-changing cells belong to the suspect condition and are skipped.
  static RepairContext Build(const Relation& I, const ConstraintSet& sigma,
                             const std::vector<Cell>& changing,
                             const std::vector<Violation>& suspects);

  int num_vars() const { return static_cast<int>(cells_.size()); }
  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(int var) const { return cells_[var]; }
  const std::vector<RcAtom>& atoms() const { return atoms_; }

  /// Variable id of a changing cell; -1 if the cell is not in C.
  int VarOf(const Cell& cell) const {
    auto it = var_of_.find(cell);
    return it == var_of_.end() ? -1 : it->second;
  }

  /// Debug rendering of all atoms.
  std::string ToString(const Relation& I) const;

 private:
  std::vector<Cell> cells_;
  std::unordered_map<Cell, int, CellHash> var_of_;
  std::vector<RcAtom> atoms_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_SOLVER_REPAIR_CONTEXT_H_
