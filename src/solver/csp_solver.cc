#include "solver/csp_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dc/op.h"
#include "solver/interval.h"

namespace cvrepair {

namespace {

// NULL and fresh values discharge any atom: the underlying DC predicate on
// such a cell is unconditionally false, which is exactly what the repair
// context wants to guarantee.
bool Discharges(const Value& v) { return v.is_null() || v.is_fresh(); }

bool AtomHolds(const RcAtom& atom, const std::vector<Value>& values) {
  const Value& lhs = values[atom.lhs_var];
  if (Discharges(lhs)) return true;
  const Value& rhs = atom.rhs_is_var ? values[atom.rhs_var] : atom.rhs_const;
  if (Discharges(rhs)) return true;
  return EvalOp(lhs, atom.op, rhs);
}

Value MakeNumeric(bool integral, double x) {
  return integral ? Value::Int(static_cast<int64_t>(std::llround(x)))
                  : Value::Double(x);
}

}  // namespace

bool SolutionSatisfies(const Component& component,
                       const ComponentSolution& solution) {
  for (const RcAtom& atom : component.atoms) {
    if (!AtomHolds(atom, solution.values)) return false;
  }
  return true;
}

CspSolver::CspSolver(const Relation& I, const DomainStats& stats,
                     CostModel cost, int64_t* fresh_counter,
                     SolverOptions options)
    : I_(I),
      stats_(stats),
      cost_(cost),
      fresh_counter_(fresh_counter),
      options_(options) {}

ComponentSolution CspSolver::Solve(const Component& component) {
  const int k = static_cast<int>(component.cells.size());
  int64_t atom_evals = 0;  // every EvalOp this solve runs
  int64_t narrowings = 0;  // interval bound-tightenings (use_interval)
  std::vector<Value> original(k);
  for (int v = 0; v < k; ++v) original[v] = I_.Get(component.cells[v]);

  // Per-variable atom indexes (built once).
  std::vector<std::vector<const RcAtom*>> unary(k);
  std::vector<std::vector<const RcAtom*>> binary(k);  // indexed by each end
  for (const RcAtom& a : component.atoms) {
    if (a.rhs_is_var) {
      binary[a.lhs_var].push_back(&a);
      binary[a.rhs_var].push_back(&a);
    } else {
      unary[a.lhs_var].push_back(&a);
    }
  }

  std::vector<bool> is_fv(k, false);

  // --- Phase 1: unary filtering, the rc(t.A, Σ) pre-check (§4.1.3). ---
  // Candidates are unary-feasible domain values, original value first,
  // then nearest-first (numeric) or most-frequent-first (categorical).
  std::vector<std::vector<Value>> cand(k);
  for (int v = 0; v < k; ++v) {
    if (Discharges(original[v])) {
      cand[v] = {original[v]};  // NULL original discharges all atoms
      continue;
    }
    const Cell& cell = component.cells[v];
    std::vector<Value> pool;
    for (const auto& [value, freq] : stats_.attr(cell.attr).frequencies) {
      (void)freq;
      pool.push_back(value);
    }
    for (const RcAtom* a : unary[v]) {
      if (a->op == Op::kEq &&
          std::find(pool.begin(), pool.end(), a->rhs_const) == pool.end()) {
        pool.push_back(a->rhs_const);
      }
    }
    std::vector<Value> feasible;
    for (const Value& value : pool) {
      bool ok = true;
      for (const RcAtom* a : unary[v]) {
        ++atom_evals;
        if (!EvalOp(value, a->op, a->rhs_const)) {
          ok = false;
          break;
        }
      }
      if (ok) feasible.push_back(value);
    }
    bool numeric = I_.schema().is_numeric(cell.attr);
    if (feasible.empty()) {
      // The active domain admits no value. Before falling back to a fresh
      // variable, a numeric cell whose unary context is pure order/range
      // comparisons gets the interval treatment: narrow, then pick the
      // min-|Δ| value — which may lie outside the active domain entirely
      // (the Bertossi–Bravo min-change fix).
      bool solved = false;
      if (options_.use_interval && numeric) {
        Interval iv = Interval::All();
        bool applicable = true;
        for (const RcAtom* a : unary[v]) {
          if (!a->rhs_const.is_numeric()) {
            applicable = false;
            break;
          }
          if (NarrowWithConst(&iv, a->op, a->rhs_const.numeric())) {
            ++narrowings;
          }
        }
        if (applicable) {
          bool integral = I_.schema().type(cell.attr) == AttrType::kInt;
          double origin =
              original[v].is_numeric() ? original[v].numeric() : 0.0;
          std::optional<double> pick = PickMinDelta(iv, origin, integral);
          if (pick.has_value()) {
            cand[v] = {MakeNumeric(integral, *pick)};
            solved = true;
          }
        }
      }
      if (!solved) {
        is_fv[v] = true;  // genuinely empty interval (or non-numeric): fv
      }
      continue;
    }
    if (numeric && original[v].is_numeric()) {
      // Anchor of the nearest-first ranking: the original value when it is
      // inside the unary feasible window, otherwise the window midpoint —
      // the original is then known-dirty and the window, derived from the
      // cell's neighbors, brackets the plausible truth.
      double lo = -std::numeric_limits<double>::infinity();
      double hi = std::numeric_limits<double>::infinity();
      for (const RcAtom* a : unary[v]) {
        if (!a->rhs_const.is_numeric()) continue;
        double c = a->rhs_const.numeric();
        if (a->op == Op::kGt || a->op == Op::kGeq) lo = std::max(lo, c);
        if (a->op == Op::kLt || a->op == Op::kLeq) hi = std::min(hi, c);
      }
      double o = original[v].numeric();
      if ((o < lo || o > hi) && std::isfinite(lo) && std::isfinite(hi) &&
          lo <= hi) {
        o = (lo + hi) / 2.0;
      } else if (o < lo && std::isfinite(lo)) {
        o = lo;
      } else if (o > hi && std::isfinite(hi)) {
        o = hi;
      }
      std::stable_sort(feasible.begin(), feasible.end(),
                       [o](const Value& a, const Value& b) {
                         return std::abs(a.numeric() - o) <
                                std::abs(b.numeric() - o);
                       });
    }
    if (!numeric && cost_.kind == CostModel::Kind::kEditDistance &&
        original[v].kind() == ValueKind::kString) {
      // Typo-repair mode: prefer candidates textually close to the
      // original value (the edit-distance cost of the paper's Def. 1).
      const std::string& o = original[v].as_string();
      std::stable_sort(feasible.begin(), feasible.end(),
                       [&o](const Value& a, const Value& b) {
                         int da = a.kind() == ValueKind::kString
                                      ? EditDistance(a.as_string(), o)
                                      : 1 << 20;
                         int db = b.kind() == ValueKind::kString
                                      ? EditDistance(b.as_string(), o)
                                      : 1 << 20;
                         return da < db;
                       });
    }
    auto it = std::find(feasible.begin(), feasible.end(), original[v]);
    if (it != feasible.end()) std::rotate(feasible.begin(), it, it + 1);
    if (static_cast<int>(feasible.size()) > options_.max_candidates_per_var) {
      feasible.resize(options_.max_candidates_per_var);
    }
    cand[v] = std::move(feasible);
  }

  std::vector<Value> assign(k);
  auto finish = [&]() {
    ComponentSolution solution;
    solution.values.resize(k);
    solution.cost = 0.0;
    solution.atom_evals = atom_evals;
    solution.interval_narrowings = narrowings;
    for (int v = 0; v < k; ++v) {
      if (is_fv[v]) {
        solution.values[v] = Value::Fresh((*fresh_counter_)++);
        ++solution.fresh_count;
      } else {
        solution.values[v] = assign[v];
      }
      solution.cost += cost_.CellDist(component.cells[v], original[v],
                                      solution.values[v]);
    }
    return solution;
  };

  // Variables that still need a value.
  std::vector<int> live;
  for (int v = 0; v < k; ++v) {
    if (!is_fv[v]) live.push_back(v);
  }

  // --- Phase 2: exact branch-and-bound for small components. ---
  if (static_cast<int>(live.size()) <= options_.max_exact_vars) {
    int total_nodes = 0;
    while (!live.empty()) {
      std::vector<int> order = live;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        size_t da = unary[a].size() + binary[a].size();
        size_t db = unary[b].size() + binary[b].size();
        if (da != db) return da > db;
        return a < b;
      });
      std::vector<int> depth_of(k, -1);
      for (size_t d = 0; d < order.size(); ++d) {
        depth_of[order[d]] = static_cast<int>(d);
      }
      // Binary atoms become checkable once both endpoints are assigned.
      std::vector<std::vector<const RcAtom*>> checks(order.size() + 1);
      for (const RcAtom& a : component.atoms) {
        if (!a.rhs_is_var) continue;
        if (is_fv[a.lhs_var] || is_fv[a.rhs_var]) continue;
        int d = std::max(depth_of[a.lhs_var], depth_of[a.rhs_var]);
        checks[d + 1].push_back(&a);
      }

      std::vector<Value> work(k);
      std::vector<Value> best;
      double best_cost = std::numeric_limits<double>::infinity();
      bool budget_hit = false;
      auto dfs = [&](auto&& self, size_t depth, double cost_so_far) -> void {
        if (budget_hit || cost_so_far >= best_cost) return;
        if (depth == order.size()) {
          best = work;
          best_cost = cost_so_far;
          return;
        }
        int v = order[depth];
        for (const Value& value : cand[v]) {
          if (++total_nodes > options_.max_search_nodes) {
            budget_hit = true;
            return;
          }
          work[v] = value;
          bool ok = true;
          for (const RcAtom* a : checks[depth + 1]) {
            const Value& lhs = work[a->lhs_var];
            const Value& rhs = work[a->rhs_var];
            ++atom_evals;
            if (!EvalOp(lhs, a->op, rhs)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          self(self, depth + 1, cost_so_far + cost_.Dist(original[v], value));
        }
      };
      dfs(dfs, 0, 0.0);

      if (!best.empty()) {
        for (int v : live) assign[v] = best[v];
        return finish();
      }
      // The domain-candidate search is inconsistent (or out of budget).
      // A fully numeric component gets one interval-propagation attempt:
      // AC-3 narrowing plus min-|Δ| picks can succeed off-domain where
      // every candidate pool failed.
      if (options_.use_interval) {
        IntervalResult ir =
            IntervalSolveComponent(I_, component, live, is_fv, original);
        narrowings += ir.narrowings;
        if (ir.applicable) {
          for (size_t i = 0; i < live.size(); ++i) {
            if (ir.fresh[i]) {
              is_fv[live[i]] = true;
            } else {
              assign[live[i]] = ir.values[i];
            }
          }
          return finish();
        }
      }
      // Inconsistent (or out of budget): fv the variable with the most
      // atoms and retry (Algorithm 2, lines 14-17).
      int victim = order[0];
      is_fv[victim] = true;
      live.erase(std::remove(live.begin(), live.end(), victim), live.end());
    }
    return finish();
  }

  // --- Phase 3: greedy sequential assignment for large components. ---
  // Most-constrained variables first; each variable takes its cheapest
  // candidate consistent with already-assigned neighbors, falling back to
  // fv. Every binary atom is enforced when its second endpoint is
  // assigned, so the result always satisfies the component.
  std::vector<int> order = live;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    size_t da = unary[a].size() + binary[a].size();
    size_t db = unary[b].size() + binary[b].size();
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<bool> assigned(k, false);
  for (int v : order) {
    bool placed = false;
    for (const Value& value : cand[v]) {
      bool ok = true;
      for (const RcAtom* a : binary[v]) {
        int other = a->lhs_var == v ? a->rhs_var : a->lhs_var;
        if (is_fv[other] || !assigned[other]) continue;
        const Value& lhs = a->lhs_var == v ? value : assign[a->lhs_var];
        const Value& rhs = a->rhs_var == v ? value : assign[a->rhs_var];
        ++atom_evals;
        if (!EvalOp(lhs, a->op, rhs)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        assign[v] = value;
        assigned[v] = true;
        placed = true;
        break;
      }
    }
    if (!placed && options_.use_interval &&
        I_.schema().is_numeric(component.cells[v].attr)) {
      // Greedy interval fallback: fold the unary atoms and the
      // already-assigned neighbors in as constant bounds, then pick the
      // min-|Δ| value. Later-assigned neighbors enforce their shared
      // atoms when they are placed, exactly like domain candidates do.
      Interval iv = Interval::All();
      bool applicable = true;
      for (const RcAtom* a : unary[v]) {
        if (!a->rhs_const.is_numeric()) {
          applicable = false;
          break;
        }
        if (NarrowWithConst(&iv, a->op, a->rhs_const.numeric())) ++narrowings;
      }
      for (const RcAtom* a : binary[v]) {
        if (!applicable) break;
        int other = a->lhs_var == v ? a->rhs_var : a->lhs_var;
        if (is_fv[other] || !assigned[other]) continue;
        if (!assign[other].is_numeric()) {
          applicable = false;
          break;
        }
        Op op = a->lhs_var == v ? a->op : FlipOperands(a->op);
        if (NarrowWithConst(&iv, op, assign[other].numeric())) ++narrowings;
      }
      if (applicable) {
        bool integral =
            I_.schema().type(component.cells[v].attr) == AttrType::kInt;
        double origin = original[v].is_numeric() ? original[v].numeric() : 0.0;
        std::optional<double> pick = PickMinDelta(iv, origin, integral);
        if (pick.has_value()) {
          assign[v] = MakeNumeric(integral, *pick);
          assigned[v] = true;
          placed = true;
        }
      }
    }
    if (!placed) is_fv[v] = true;
  }
  return finish();
}

}  // namespace cvrepair
