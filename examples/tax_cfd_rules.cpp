// Conditional rules with constants (CFD-shaped denial constraints) on the
// classic TAX workload: state-dependent rates plus an exemption rule with
// constant predicates. The given rules are overrefined — the rate rule
// carries a Name= join that fragments its groups, the exemption rule a
// Dependents=0 guard — so errors slip through until a negative θ deletes
// the excessive predicates (including a *constant* one, the case
// Section 6 of the paper points out DCs cover and FDs cannot).
//
// Run:  build/examples/example_tax_cfd_rules
#include <iostream>

#include "data/noise.h"
#include "data/tax.h"
#include "eval/explanation.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

using namespace cvrepair;

int main() {
  TaxData tax = MakeTax(TaxConfig{});
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = {TaxAttrs::kRate, TaxAttrs::kTax};
  NoisyData dirty = InjectNoise(tax.clean, noise);

  std::cout << "TAX: " << tax.clean.num_rows() << " records, "
            << dirty.dirty_cells.size() << " dirty Rate/Tax cells\n\n";
  std::cout << "Given (overrefined) rules:\n"
            << ToString(tax.given, tax.clean.schema()) << "\n";

  auto evaluate = [&](const std::string& name, const RepairResult& r) {
    AccuracyResult acc = CellAccuracy(tax.clean, dirty.dirty, r.repaired);
    std::cout << name << "  f-measure=" << acc.f_measure
              << "  recall=" << acc.recall
              << "  changed=" << r.stats.changed_cells << "\n";
  };

  evaluate("plain Vfree          ", VfreeRepair(dirty.dirty, tax.given));
  RepairResult best;
  for (double theta : {-0.5, -1.0}) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.space = tax.space;
    options.variants.max_changed_constraints = 2;
    best = CVTolerantRepair(dirty.dirty, tax.given, options);
    evaluate("CVtolerant theta=" + std::to_string(theta).substr(0, 4), best);
  }

  std::cout << "\nRules after tolerance (Name= and Dependents=0 deleted):\n"
            << ToString(best.satisfied_constraints, tax.clean.schema());
  std::cout << "\nSample of the repair provenance:\n"
            << ExplainRepair(dirty.dirty, best.repaired,
                             best.satisfied_constraints)
                   .ToString(tax.clean.schema(), /*max_cells=*/6);
  return 0;
}
