// Quickstart: the paper's running example end to end.
//
// Builds the Income relation of Figure 1(a), declares the oversimplified
// DC φ4: not(Income> & Tax<=) from Example 3, and shows how the
// θ-tolerant repair substitutes the operator (φ4', Example 4) and repairs
// a single cell instead of rewriting half the Tax column.
//
// Run:  build/examples/example_quickstart
#include <iostream>

#include "dc/parser.h"
#include "relation/relation.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

using namespace cvrepair;

namespace {

Relation MakeIncomeRelation() {
  Schema schema;
  schema.AddAttribute("Name", AttrType::kString);
  schema.AddAttribute("Birthday", AttrType::kString);
  schema.AddAttribute("CP", AttrType::kString);
  schema.AddAttribute("Year", AttrType::kInt);
  schema.AddAttribute("Income", AttrType::kDouble);
  schema.AddAttribute("Tax", AttrType::kDouble);
  Relation rel(schema);
  auto row = [&](const char* name, const char* bday, const char* cp, int year,
                 double income, double tax) {
    rel.AddRow({Value::String(name), Value::String(bday), Value::String(cp),
                Value::Int(year), Value::Double(income), Value::Double(tax)});
  };
  row("Ayres", "8-8-1984", "322-573", 2007, 21, 0);
  row("Ayres", "5-1-1960", "***-389", 2007, 22, 0);
  row("Ayres", "5-1-1960", "564-389", 2007, 22, 0);
  row("Stanley", "13-8-1987", "868-701", 2007, 23, 3);
  row("Stanley", "31-7-1983", "***-198", 2007, 24, 0);
  row("Stanley", "31-7-1983", "930-198", 2008, 24, 0);
  row("Dustin", "2-12-1985", "179-924", 2008, 25, 0);
  row("Dustin", "5-9-1980", "***-870", 2008, 100, 21);
  row("Dustin", "5-9-1980", "824-870", 2009, 100, 21);
  row("Dustin", "9-4-1984", "387-215", 2009, 150, 40);
  return rel;
}

}  // namespace

int main() {
  Relation income = MakeIncomeRelation();
  std::cout << "Figure 1(a) — the dirty Income relation:\n"
            << income.ToString() << "\n";

  // φ4 (Example 3): "higher income pays more tax", written with the
  // imprecise <= that also denies ties in the zero-tax band.
  ParseConstraintResult parsed = ParseConstraint(
      income.schema(), "phi4: not(t0.Income>t1.Income & t0.Tax<=t1.Tax)");
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error << "\n";
    return 1;
  }
  ConstraintSet sigma = {*parsed.constraint};
  std::cout << "Given constraint (imprecise):\n  "
            << sigma[0].ToString(income.schema()) << "\n\n";

  // 1. Repairing against Σ as-is: the irrational repair of Example 3 —
  //    five Tax cells destroyed, several with fresh variables.
  RepairResult plain = VfreeRepair(income, sigma);
  std::cout << "Plain repair (no tolerance): changed "
            << plain.stats.changed_cells << " cells, "
            << plain.stats.fresh_assignments << " fresh variables\n";

  // 2. θ-tolerant repair: with θ = 1 the substitution Tax<= -> Tax< costs
  //    0.5 and the minimum repair touches a single cell (t4.Tax := 0).
  CVTolerantOptions options;
  options.variants.theta = 1.0;
  RepairResult tolerant = CVTolerantRepair(income, sigma, options);
  std::cout << "θ-tolerant repair (θ=1):     changed "
            << tolerant.stats.changed_cells << " cell(s)\n";
  std::cout << "Chosen constraint variant:\n  "
            << tolerant.satisfied_constraints[0].ToString(income.schema())
            << "\n\n";
  std::cout << "Repaired relation:\n" << tolerant.repaired.ToString() << "\n";
  std::cout << "Stats: " << tolerant.stats.ToString() << "\n";
  return 0;
}
