// Discovery-to-repair workflow (Appendix C.3 of the paper): integrity
// constraints are often *discovered* from the data — and when the data is
// dirty, discovery itself is unreliable. This example shows the pipeline:
//
//  1. exact-confidence FD discovery on dirty HOSP loses the rules that
//     govern the noisy attributes (no exact FD survives the noise), so
//     repairing with the discovered set fixes nothing;
//  2. approximate discovery (Kivinen & Mannila-style, the paper's [13])
//     recovers the rules — some precise, some imprecise;
//  3. θ-tolerant repairing on the discovered set: a θ sweep plus the
//     changed-cell guideline of Section 5.1 picks the right tolerance —
//     small here, because approximate discovery already returned
//     near-precise rules.
//
// Run:  build/examples/example_discovery_workflow
#include <algorithm>
#include <iostream>

#include "data/hosp.h"
#include "data/noise.h"
#include "discovery/fd_discovery.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

using namespace cvrepair;

namespace {

// Keeps the discovered rules governing the attributes the curator wants
// cleaned (the noisy attributes), at most `limit` of them.
ConstraintSet RulesFor(const std::vector<DiscoveredFd>& fds,
                       const std::vector<AttrId>& targets, size_t limit) {
  ConstraintSet sigma;
  for (const DiscoveredFd& d : fds) {
    if (sigma.size() >= limit) break;
    if (std::find(targets.begin(), targets.end(), d.fd.rhs) ==
        targets.end()) {
      continue;
    }
    sigma.push_back(d.AsConstraint());
  }
  return sigma;
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 50;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = hosp.noise_attrs;
  NoisyData noisy = InjectNoise(hosp.clean, noise);
  std::cout << "HOSP with " << noisy.dirty_cells.size() << " dirty cells\n\n";

  auto evaluate = [&](const char* name, const RepairResult& r) {
    AccuracyResult acc = CellAccuracy(hosp.clean, noisy.dirty, r.repaired);
    std::cout << "  " << name << ": f-measure=" << acc.f_measure
              << "  recall=" << acc.recall
              << "  changed=" << r.stats.changed_cells << "\n";
  };

  FdDiscoveryOptions discovery;
  discovery.max_lhs_size = 2;
  discovery.excluded_attrs = {HospAttrs::kSample, HospAttrs::kScore};

  // 1. Exact discovery on the dirty instance.
  discovery.min_confidence = 1.0;
  ConstraintSet exact =
      RulesFor(DiscoverFds(noisy.dirty, discovery), hosp.noise_attrs, 8);
  std::cout << "Exact-confidence discovery found " << exact.size()
            << " FDs — none on the noisy attributes (the noise hides "
               "them):\n";
  for (const DenialConstraint& c : exact) {
    std::cout << "  " << c.ToString(hosp.clean.schema()) << "\n";
  }
  evaluate("repair with exact-discovered set   ",
           VfreeRepair(noisy.dirty, exact));

  // 2. Approximate discovery tolerates the noise.
  discovery.min_confidence = 0.90;
  ConstraintSet approx =
      RulesFor(DiscoverFds(noisy.dirty, discovery), hosp.noise_attrs, 8);
  std::cout << "\nApproximate discovery (confidence 0.90) found "
            << approx.size() << " FDs, including the noisy attributes:\n";
  for (const DenialConstraint& c : approx) {
    std::cout << "  " << c.ToString(hosp.clean.schema()) << "\n";
  }
  evaluate("repair with approx-discovered set  ",
           VfreeRepair(noisy.dirty, approx));

  // 3. Tolerant repairing on the same discovered set: sweep θ and apply
  //    the Section 5.1 guideline. Approximate discovery already returns
  //    near-precise rules here, so a small θ wins — larger tolerance only
  //    buys overfitting room (the right-hand side of Figure 6).
  std::cout << "\ntheta-tolerant repair on the approx-discovered set:\n";
  for (double theta : {0.0, 0.5, 1.0}) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.space = hosp.space;
    std::string name = "CVtolerant theta=" + std::to_string(theta).substr(0, 3);
    evaluate(name.c_str(), CVTolerantRepair(noisy.dirty, approx, options));
  }
  return 0;
}
