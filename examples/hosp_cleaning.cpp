// HOSP cleaning walkthrough: categorical (FD-based) repairing with
// oversimplified given constraints, comparing plain repairing against the
// θ-tolerant repair and showing the θ-selection guideline of Section 5.1
// (watch the number of changed cells).
//
// Run:  build/examples/example_hosp_cleaning [error_rate]
#include <cstdlib>
#include <iostream>

#include "data/hosp.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

using namespace cvrepair;

int main(int argc, char** argv) {
  double error_rate = argc > 1 ? std::atof(argv[1]) : 0.05;

  HospConfig config;
  config.num_hospitals = 60;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = error_rate;
  noise.target_attrs = hosp.noise_attrs;
  NoisyData noisy = InjectNoise(hosp.clean, noise);

  std::cout << "HOSP: " << hosp.clean.num_rows() << " tuples, "
            << hosp.clean.num_attributes() << " attributes, "
            << noisy.dirty_cells.size() << " dirty cells (rate "
            << error_rate << ")\n\n";
  std::cout << "Given constraints (fd_phone is oversimplified — the truth "
               "needs Address):\n"
            << ToString(hosp.given_oversimplified, hosp.clean.schema())
            << "\n";

  RepairResult plain = VfreeRepair(noisy.dirty, hosp.given_oversimplified);
  AccuracyResult plain_acc = CellAccuracy(hosp.clean, noisy.dirty, plain.repaired);
  std::cout << "Plain Vfree repair:  f-measure=" << plain_acc.f_measure
            << "  changed=" << plain.stats.changed_cells << " cells\n";

  std::cout << "\nθ sweep (Section 5.1: pick the θ whose repair changes a "
               "moderate number of cells):\n";
  for (double theta : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.space = hosp.space;
    RepairResult r =
        CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, options);
    AccuracyResult acc = CellAccuracy(hosp.clean, noisy.dirty, r.repaired);
    std::cout << "  θ=" << theta << "  f-measure=" << acc.f_measure
              << "  precision=" << acc.precision << "  recall=" << acc.recall
              << "  changed=" << r.stats.changed_cells
              << "  variants=" << r.stats.variants_enumerated << "\n";
  }

  CVTolerantOptions best;
  best.variants.theta = 1.0;
  best.variants.space = hosp.space;
  RepairResult r =
      CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, best);
  std::cout << "\nConstraints chosen at θ=1 (note the refined fd_phone):\n"
            << ToString(r.satisfied_constraints, hosp.clean.schema());
  return 0;
}
