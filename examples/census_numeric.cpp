// Numeric DC repairing on CENSUS: the oversimplified order operators
// ("Tax <=" instead of "<", "MonthlyWage !=" instead of "<") overrepair
// badly; the θ-tolerant repair substitutes the strict operators — the
// order-relationship refinement that FD-based methods cannot express
// (contribution (2) of the paper).
//
// Run:  build/examples/example_census_numeric [rows]
#include <cstdlib>
#include <iostream>

#include "data/census.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/greedy.h"
#include "repair/holistic.h"

using namespace cvrepair;

int main(int argc, char** argv) {
  CensusConfig config;
  config.num_rows = argc > 1 ? std::atoi(argv[1]) : 400;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  NoisyData noisy = InjectNoise(census.clean, noise);

  std::cout << "CENSUS: " << census.clean.num_rows() << " tuples, "
            << census.clean.num_attributes() << " attributes, "
            << noisy.dirty_cells.size() << " dirty numeric cells\n\n";
  std::cout << "Given DCs (imprecise operators):\n"
            << ToString(census.given, census.clean.schema()) << "\n";
  std::cout << "Dirty-data MNAD: "
            << Mnad(census.clean, noisy.dirty, census.noise_attrs) << "\n\n";

  auto report = [&](const char* name, const RepairResult& r) {
    std::cout << name << "  MNAD="
              << Mnad(census.clean, r.repaired, census.noise_attrs)
              << "  rel.accuracy="
              << RelativeAccuracy(census.clean, noisy.dirty, r.repaired,
                                  census.noise_attrs)
              << "  changed=" << r.stats.changed_cells
              << "  time=" << r.stats.elapsed_seconds << "s\n";
  };

  report("Greedy    ", GreedyRepair(noisy.dirty, census.given));
  report("Holistic  ", HolisticRepair(noisy.dirty, census.given));

  CVTolerantOptions options;
  options.variants.theta = 1.0;
  options.variants.space = census.space;
  RepairResult cv = CVTolerantRepair(noisy.dirty, census.given, options);
  report("CVtolerant", cv);
  std::cout << "\nConstraints chosen by CVtolerant (note <= -> < and "
               "!= -> <):\n"
            << ToString(cv.satisfied_constraints, census.clean.schema());
  return 0;
}
