// θ-selection walkthrough (Section 5.1 / Appendix C.1): the library
// returns one repair per tolerance level; a curator picks the repair
// whose changed-cell count is *moderate* — a large count flags
// oversimplified constraints (over-repair), a near-zero count flags
// overrefined constraints (overfitting). This example prints the
// guideline table for both directions of imprecision.
//
// Run:  build/examples/example_theta_tuning
#include <iostream>

#include "data/hosp.h"
#include "data/noise.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"

using namespace cvrepair;

namespace {

void Sweep(const char* title, const HospData& hosp, const NoisyData& noisy,
           const ConstraintSet& given, const std::vector<double>& thetas,
           int max_changed) {
  ExperimentTable table(title,
                        {"theta", "changed_cells", "f_measure", "verdict"});
  int prev_changed = -1;
  for (double theta : thetas) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.space = hosp.space;
    options.variants.max_changed_constraints = max_changed;
    RepairResult r = CVTolerantRepair(noisy.dirty, given, options);
    AccuracyResult acc = CellAccuracy(hosp.clean, noisy.dirty, r.repaired);
    const char* verdict = "moderate";
    if (prev_changed > 0 && r.stats.changed_cells > prev_changed * 2) {
      verdict = "over-repairing (oversimplified)";
    } else if (r.stats.changed_cells * 3 <
               static_cast<int>(noisy.dirty_cells.size())) {
      verdict = "too few repairs (overrefined)";
    }
    table.BeginRow();
    table.Add(theta, 1);
    table.Add(r.stats.changed_cells);
    table.Add(acc.f_measure);
    table.Add(verdict);
    prev_changed = r.stats.changed_cells;
  }
  table.Print();
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 50;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = hosp.noise_attrs;
  NoisyData noisy = InjectNoise(hosp.clean, noise);
  std::cout << "HOSP with " << noisy.dirty_cells.size()
            << " dirty cells. The curator compares repairs across θ and "
               "keeps the moderate one.\n\n";

  Sweep("oversimplified given constraints: sweep θ upward", hosp, noisy,
        hosp.given_oversimplified, {0.0, 0.5, 1.0, 2.0, 3.0}, 2);
  Sweep("overrefined given constraints: sweep θ downward", hosp, noisy,
        hosp.given_overrefined, {0.0, -0.5, -1.0, -1.5, -2.0}, 3);
  return 0;
}
