// GPS trajectory cleaning: overrefined single-tuple DCs guard the step
// bounds with an excessive "Quality = 0" predicate, so jumps recorded
// with good signal quality escape detection. A negative θ deletes the
// guards (predicate deletion, Appendix D.2) and the jumps get repaired —
// the Figure 15 scenario.
//
// Run:  build/examples/example_gps_cleaning [points]
#include <cstdlib>
#include <iostream>

#include "data/gps.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/holistic.h"

using namespace cvrepair;

int main(int argc, char** argv) {
  GpsConfig config;
  config.num_points = argc > 1 ? std::atoi(argv[1]) : 800;
  GpsData gps = MakeGps(config);

  std::cout << "GPS: " << gps.clean.num_rows() << " readings, "
            << gps.dirty_cells.size() << " dirty cells from jumps\n";
  std::cout << "Given (overrefined) DCs:\n"
            << ToString(gps.given, gps.clean.schema()) << "\n";
  std::cout << "Dirty MNAD on steps: "
            << Mnad(gps.clean, gps.dirty, gps.eval_attrs) << "\n\n";

  auto report = [&](const char* name, const RepairResult& r) {
    std::cout << name << "  MNAD="
              << Mnad(gps.clean, r.repaired, gps.eval_attrs)
              << "  rel.accuracy="
              << RelativeAccuracy(gps.clean, gps.dirty, r.repaired,
                                  gps.eval_attrs)
              << "  changed=" << r.stats.changed_cells << "\n";
  };

  report("Holistic (given DCs)    ",
         HolisticRepair(gps.dirty, gps.given));

  for (double theta : {-0.5, -1.0, -2.0}) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.max_changed_constraints = 4;
    RepairResult cv = CVTolerantRepair(gps.dirty, gps.given, options);
    std::cout << "CVtolerant θ=" << theta << "          ";
    report("", cv);
  }

  CVTolerantOptions options;
  options.variants.theta = -2.0;
  options.variants.max_changed_constraints = 4;
  RepairResult cv = CVTolerantRepair(gps.dirty, gps.given, options);
  std::cout << "\nConstraints at θ=-2 (Quality guards deleted):\n"
            << ToString(cv.satisfied_constraints, gps.clean.schema());
  return 0;
}
